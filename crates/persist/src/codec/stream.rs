//! The per-stream snapshot codec: one serving stream's recovery image.
//!
//! A stream snapshot pairs the stream's bounded replay log (the verbatim
//! `data` lines since the last checkpoint barrier) with a
//! [`SessionCheckpoint`] — the comparable image of the monitor session's
//! bounded state at input sequence `seq`. Recovery replays the log into a
//! fresh session and compares checkpoints: equality proves the rebuilt
//! session will emit byte-identical verdicts for all future events, so the
//! stream is reported `recovered`; any mismatch demotes it to an explicit
//! `reset`, never a silently wrong continuation.

use crate::codec::common::{decode_valuation, encode_valuation, malformed};
use crate::envelope::{self, SnapshotKind};
use crate::error::PersistError;
use crate::wire::{Reader, Writer};
use std::path::Path;
use tracelearn_core::SessionCheckpoint;

/// One serving stream's crash-recovery image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamSnapshot {
    /// The stream name, exactly as opened by the client.
    pub stream: String,
    /// The name of the model the stream was opened against.
    pub model: String,
    /// The model *version* the stream is pinned to (hot-reload bumps the
    /// registry version; in-flight streams stay on their open-time version).
    pub version: u64,
    /// Input commands consumed for this stream when the checkpoint was
    /// taken. A recovered client resumes sending from `seq`.
    pub seq: u64,
    /// The replay log: verbatim input lines not yet retired by the
    /// checkpoint barrier, replayed before comparing checkpoints.
    pub log: Vec<String>,
    /// The session image at `seq`; `None` for a stream checkpointed before
    /// its session processed any input (recovery then replays from scratch).
    pub checkpoint: Option<SessionCheckpoint>,
}

fn encode_checkpoint(w: &mut Writer, c: &SessionCheckpoint) {
    w.u64(c.events);
    w.u64(c.positions);
    w.u64(c.windows_checked);
    w.u64(c.deviations);
    w.length(c.pending.len());
    for valuation in &c.pending {
        encode_valuation(w, valuation);
    }
    w.length(c.recent.len());
    for valuation in &c.recent {
        encode_valuation(w, valuation);
    }
    w.length(c.pred_window.len());
    for &index in &c.pred_window {
        w.u32(index);
    }
    w.length(c.tracker_words.len());
    for &word in &c.tracker_words {
        w.u64(word);
    }
    w.boolean(c.tracker_alive);
}

fn decode_checkpoint(r: &mut Reader<'_>) -> Result<SessionCheckpoint, PersistError> {
    let events = r.u64()?;
    let positions = r.u64()?;
    let windows_checked = r.u64()?;
    let deviations = r.u64()?;
    let pending_len = r.length(8)?;
    let mut pending = Vec::with_capacity(pending_len);
    for _ in 0..pending_len {
        pending.push(decode_valuation(r)?);
    }
    let recent_len = r.length(8)?;
    let mut recent = Vec::with_capacity(recent_len);
    for _ in 0..recent_len {
        recent.push(decode_valuation(r)?);
    }
    let window_len = r.length(4)?;
    let mut pred_window = Vec::with_capacity(window_len);
    for _ in 0..window_len {
        pred_window.push(r.u32()?);
    }
    let words_len = r.length(8)?;
    let mut tracker_words = Vec::with_capacity(words_len);
    for _ in 0..words_len {
        tracker_words.push(r.u64()?);
    }
    let tracker_alive = r.boolean()?;
    Ok(SessionCheckpoint {
        events,
        positions,
        windows_checked,
        deviations,
        pending,
        recent,
        pred_window,
        tracker_words,
        tracker_alive,
    })
}

/// Encodes a stream snapshot as a complete envelope.
pub fn encode_stream(snapshot: &StreamSnapshot) -> Vec<u8> {
    let mut w = Writer::new();
    w.string(&snapshot.stream);
    w.string(&snapshot.model);
    w.u64(snapshot.version);
    w.u64(snapshot.seq);
    w.length(snapshot.log.len());
    for line in &snapshot.log {
        w.string(line);
    }
    match &snapshot.checkpoint {
        Some(checkpoint) => {
            w.boolean(true);
            encode_checkpoint(&mut w, checkpoint);
        }
        None => w.boolean(false),
    }
    envelope::encode(SnapshotKind::Stream, &w.into_bytes())
}

/// Decodes a stream snapshot from envelope bytes.
///
/// # Errors
///
/// Any damage yields a typed [`PersistError`].
pub fn decode_stream(bytes: &[u8]) -> Result<StreamSnapshot, PersistError> {
    let payload = envelope::decode(bytes, SnapshotKind::Stream)?;
    let mut r = Reader::new(payload);
    let stream = r.string()?;
    let model = r.string()?;
    let version = r.u64()?;
    let seq = r.u64()?;
    let log_len = r.length(8)?;
    let mut log = Vec::with_capacity(log_len);
    for _ in 0..log_len {
        log.push(r.string()?);
    }
    let checkpoint = if r.option()? {
        Some(decode_checkpoint(&mut r)?)
    } else {
        None
    };
    r.finish()?;
    if u64::try_from(log.len()).map_err(|_| malformed("log length overflows u64"))? > seq {
        return Err(malformed(format!(
            "replay log of {} lines exceeds sequence number {seq}",
            log.len()
        )));
    }
    Ok(StreamSnapshot {
        stream,
        model,
        version,
        seq,
        log,
        checkpoint,
    })
}

/// Saves a stream snapshot to `path` crash-safely.
///
/// # Errors
///
/// Returns [`PersistError::Io`] on filesystem failure.
pub fn save_stream(path: &Path, snapshot: &StreamSnapshot) -> Result<(), PersistError> {
    envelope::write_atomic(path, &encode_stream(snapshot))
}

/// Loads and validates a stream snapshot from `path`.
///
/// # Errors
///
/// As [`decode_stream`], plus [`PersistError::Io`] for filesystem failures.
pub fn load_stream(path: &Path) -> Result<StreamSnapshot, PersistError> {
    decode_stream(&envelope::read_file(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracelearn_trace::{Valuation, Value};

    fn sample() -> StreamSnapshot {
        StreamSnapshot {
            stream: "tenant-a/stream-1".to_owned(),
            model: "counter".to_owned(),
            version: 3,
            seq: 42,
            log: vec!["data tenant-a/stream-1 7,up".to_owned(); 5],
            checkpoint: Some(SessionCheckpoint {
                events: 40,
                positions: 38,
                windows_checked: 36,
                deviations: 1,
                pending: vec![Valuation::from_values(vec![
                    Value::Int(7),
                    Value::Bool(true),
                ])],
                recent: vec![
                    Valuation::from_values(vec![Value::Int(6), Value::Bool(false)]),
                    Valuation::from_values(vec![Value::Int(7), Value::Bool(true)]),
                ],
                pred_window: vec![0, 2, 1],
                tracker_words: vec![0b1011],
                tracker_alive: true,
            }),
        }
    }

    #[test]
    fn stream_snapshot_round_trips() {
        let snapshot = sample();
        let bytes = encode_stream(&snapshot);
        assert_eq!(decode_stream(&bytes).unwrap(), snapshot);
        let no_checkpoint = StreamSnapshot {
            checkpoint: None,
            log: Vec::new(),
            seq: 0,
            ..snapshot
        };
        let bytes = encode_stream(&no_checkpoint);
        assert_eq!(decode_stream(&bytes).unwrap(), no_checkpoint);
    }

    #[test]
    fn an_overlong_log_is_rejected() {
        let mut snapshot = sample();
        snapshot.seq = 2; // fewer inputs than log lines: impossible image
        let bytes = encode_stream(&snapshot);
        assert!(matches!(
            decode_stream(&bytes),
            Err(PersistError::Malformed(_))
        ));
    }
}
