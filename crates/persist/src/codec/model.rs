//! The model snapshot codec: a [`LearnedModel`] plus the [`LearnerConfig`]
//! it was learned (and must be monitored) with.
//!
//! The automaton is persisted as its transition list in insertion order and
//! rebuilt by replaying [`Nfa::add_transition`], which reproduces identical
//! internal label ids (they are interned by first use). The alphabet is
//! persisted as its predicates in intern order and rebuilt the same way, so
//! every `PredId` in the snapshot is a plain index into that order — there is
//! no way to construct a `PredId` directly, and none is needed.

use crate::codec::common::{
    decode_predicate, decode_signature, decode_symbols, encode_predicate, encode_signature,
    encode_symbols, malformed,
};
use crate::envelope::{self, SnapshotKind};
use crate::error::PersistError;
use crate::wire::{Reader, Writer};
use std::path::Path;
use std::time::Duration;
use tracelearn_automaton::{Nfa, StateId};
use tracelearn_core::{
    LearnStats, LearnedModel, LearnerConfig, PredId, PredicateAlphabet, SolverStrategy,
};
use tracelearn_synth::{GrammarRestriction, SynthesisConfig};

/// A learned model bundled with the learner configuration it belongs to.
///
/// The configuration travels with the model because monitoring needs it (the
/// window length and compliance settings shape verdicts), which makes a model
/// snapshot self-contained: `served` can reload one without re-deriving any
/// command-line state.
#[derive(Debug, Clone)]
pub struct ModelSnapshot {
    /// The learner configuration the model was produced with.
    pub config: LearnerConfig,
    /// The learned model itself.
    pub model: LearnedModel,
}

// ---- usize / duration helpers -------------------------------------------

fn encode_usize(w: &mut Writer, v: usize) {
    w.u64(v as u64);
}

fn decode_usize(r: &mut Reader<'_>) -> Result<usize, PersistError> {
    let v = r.u64()?;
    usize::try_from(v).map_err(|_| malformed(format!("count {v} overflows usize")))
}

fn encode_duration(w: &mut Writer, d: Duration) {
    w.u64(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
}

fn decode_duration(r: &mut Reader<'_>) -> Result<Duration, PersistError> {
    Ok(Duration::from_nanos(r.u64()?))
}

// ---- learner configuration ----------------------------------------------

fn encode_synthesis(w: &mut Writer, s: &SynthesisConfig) {
    encode_usize(w, s.max_term_size);
    encode_usize(w, s.max_candidates);
    w.length(s.extra_constants.len());
    for &c in &s.extra_constants {
        w.i64(c);
    }
    match &s.grammar {
        GrammarRestriction::Free => w.u8(0),
        GrammarRestriction::LinearWithConstants(constants) => {
            w.u8(1);
            w.length(constants.len());
            for &c in constants {
                w.i64(c);
            }
        }
    }
    encode_usize(w, s.cegis_initial_samples);
    encode_usize(w, s.cegis_max_iterations);
}

fn decode_i64_vec(r: &mut Reader<'_>) -> Result<Vec<i64>, PersistError> {
    let len = r.length(8)?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(r.i64()?);
    }
    Ok(out)
}

fn decode_synthesis(r: &mut Reader<'_>) -> Result<SynthesisConfig, PersistError> {
    let max_term_size = decode_usize(r)?;
    let max_candidates = decode_usize(r)?;
    let extra_constants = decode_i64_vec(r)?;
    let grammar = match r.u8()? {
        0 => GrammarRestriction::Free,
        1 => GrammarRestriction::LinearWithConstants(decode_i64_vec(r)?),
        other => return Err(malformed(format!("unknown grammar tag {other}"))),
    };
    let cegis_initial_samples = decode_usize(r)?;
    let cegis_max_iterations = decode_usize(r)?;
    Ok(SynthesisConfig {
        max_term_size,
        max_candidates,
        extra_constants,
        grammar,
        cegis_initial_samples,
        cegis_max_iterations,
    })
}

pub(crate) fn encode_config(w: &mut Writer, c: &LearnerConfig) {
    encode_usize(w, c.window);
    encode_usize(w, c.compliance_length);
    encode_usize(w, c.initial_states);
    encode_usize(w, c.max_states);
    w.boolean(c.segmented);
    encode_usize(w, c.max_refinements);
    match c.max_conflicts {
        Some(max_conflicts) => {
            w.boolean(true);
            w.u64(max_conflicts);
        }
        None => w.boolean(false),
    }
    encode_usize(w, c.max_clauses);
    match c.time_budget {
        Some(time_budget) => {
            w.boolean(true);
            encode_duration(w, time_budget);
        }
        None => w.boolean(false),
    }
    encode_synthesis(w, &c.synthesis);
    w.length(c.input_variables.len());
    for name in &c.input_variables {
        w.string(name);
    }
    encode_usize(w, c.stream_chunk);
    encode_usize(w, c.num_threads);
    w.u8(match c.solver_strategy {
        SolverStrategy::PerCount => 0,
        SolverStrategy::BatchedAssumptions => 1,
    });
    encode_usize(w, c.calibration_sample);
}

pub(crate) fn decode_config(r: &mut Reader<'_>) -> Result<LearnerConfig, PersistError> {
    let window = decode_usize(r)?;
    let compliance_length = decode_usize(r)?;
    let initial_states = decode_usize(r)?;
    let max_states = decode_usize(r)?;
    let segmented = r.boolean()?;
    let max_refinements = decode_usize(r)?;
    let max_conflicts = if r.option()? { Some(r.u64()?) } else { None };
    let max_clauses = decode_usize(r)?;
    let time_budget = if r.option()? {
        Some(decode_duration(r)?)
    } else {
        None
    };
    let synthesis = decode_synthesis(r)?;
    let inputs_len = r.length(8)?;
    let mut input_variables = Vec::with_capacity(inputs_len);
    for _ in 0..inputs_len {
        input_variables.push(r.string()?);
    }
    let stream_chunk = decode_usize(r)?;
    let num_threads = decode_usize(r)?;
    let solver_strategy = match r.u8()? {
        0 => SolverStrategy::PerCount,
        1 => SolverStrategy::BatchedAssumptions,
        other => return Err(malformed(format!("unknown solver strategy {other}"))),
    };
    let calibration_sample = decode_usize(r)?;
    Ok(LearnerConfig {
        window,
        compliance_length,
        initial_states,
        max_states,
        segmented,
        max_refinements,
        max_conflicts,
        max_clauses,
        time_budget,
        synthesis,
        input_variables,
        stream_chunk,
        num_threads,
        solver_strategy,
        calibration_sample,
    })
}

// ---- alphabet and predicate-id sequences --------------------------------

/// Encodes the alphabet as its predicates in intern order.
pub(crate) fn encode_alphabet(w: &mut Writer, alphabet: &PredicateAlphabet) {
    w.length(alphabet.len());
    for (_, predicate) in alphabet.iter() {
        encode_predicate(w, predicate);
    }
}

/// Decodes an alphabet by re-interning its predicates, returning both the
/// alphabet and the interned ids in order — the only way to obtain `PredId`
/// values for index-encoded references.
pub(crate) fn decode_alphabet(
    r: &mut Reader<'_>,
) -> Result<(PredicateAlphabet, Vec<PredId>), PersistError> {
    let len = r.length(1)?;
    let mut alphabet = PredicateAlphabet::new();
    let mut ids = Vec::with_capacity(len);
    for i in 0..len {
        let id = alphabet.intern(decode_predicate(r)?);
        if id.index() != i {
            return Err(malformed(format!(
                "duplicate predicate at alphabet slot {i}"
            )));
        }
        ids.push(id);
    }
    Ok((alphabet, ids))
}

pub(crate) fn encode_pred_seq(w: &mut Writer, sequence: &[PredId]) {
    w.length(sequence.len());
    for id in sequence {
        w.u32(id.index() as u32);
    }
}

pub(crate) fn decode_pred_seq(
    r: &mut Reader<'_>,
    ids: &[PredId],
) -> Result<Vec<PredId>, PersistError> {
    let len = r.length(4)?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        let index = r.u32()? as usize;
        let id = ids
            .get(index)
            .ok_or_else(|| malformed(format!("predicate index {index} outside the alphabet")))?;
        out.push(*id);
    }
    Ok(out)
}

// ---- automaton -----------------------------------------------------------

fn encode_nfa(w: &mut Writer, nfa: &Nfa<PredId>) {
    w.u32(nfa.num_states() as u32);
    w.u32(nfa.initial().index() as u32);
    w.length(nfa.transitions().len());
    for t in nfa.transitions() {
        w.u32(t.from.index() as u32);
        w.u32(t.label.index() as u32);
        w.u32(t.to.index() as u32);
    }
}

fn decode_nfa(r: &mut Reader<'_>, ids: &[PredId]) -> Result<Nfa<PredId>, PersistError> {
    let num_states = r.u32()? as usize;
    let initial = r.u32()? as usize;
    // `Nfa::new` and `add_transition` assert their ranges; validate first so
    // a malformed snapshot is an error, never a panic.
    if num_states == 0 {
        return Err(malformed("automaton with zero states"));
    }
    if initial >= num_states {
        return Err(malformed(format!(
            "initial state {initial} outside {num_states} states"
        )));
    }
    let mut nfa = Nfa::new(num_states, StateId::new(initial as u32));
    let transitions = r.length(12)?;
    for _ in 0..transitions {
        let from = r.u32()? as usize;
        let label_index = r.u32()? as usize;
        let to = r.u32()? as usize;
        if from >= num_states || to >= num_states {
            return Err(malformed(format!(
                "transition {from}->{to} outside {num_states} states"
            )));
        }
        let label = *ids.get(label_index).ok_or_else(|| {
            malformed(format!(
                "transition label {label_index} outside the alphabet"
            ))
        })?;
        nfa.add_transition(StateId::new(from as u32), label, StateId::new(to as u32));
    }
    Ok(nfa)
}

// ---- learn stats ---------------------------------------------------------

fn encode_stats(w: &mut Writer, s: &LearnStats) {
    encode_usize(w, s.trace_length);
    encode_usize(w, s.predicate_count);
    encode_usize(w, s.alphabet_size);
    encode_usize(w, s.solver_windows);
    encode_usize(w, s.shards);
    w.length(s.shard_windows.len());
    for &n in &s.shard_windows {
        encode_usize(w, n);
    }
    encode_usize(w, s.peak_resident_observations);
    encode_usize(w, s.sat_queries);
    encode_usize(w, s.solvers_constructed);
    w.u64(s.reused_learnt_clauses);
    w.u64(s.minimized_literals);
    w.length(s.lbd_histogram.len());
    for &n in &s.lbd_histogram {
        w.u64(n);
    }
    encode_usize(w, s.refinements);
    encode_usize(w, s.states);
    encode_usize(w, s.threads_used);
    encode_usize(w, s.speculative_solves);
    encode_usize(w, s.cancelled_solves);
    encode_duration(w, s.ingest_time);
    encode_duration(w, s.synthesis_time);
    encode_duration(w, s.segmentation_time);
    encode_duration(w, s.solver_time);
    encode_duration(w, s.total_time);
}

fn decode_stats(r: &mut Reader<'_>) -> Result<LearnStats, PersistError> {
    // Struct-literal fields evaluate in written order, matching the
    // encoder's byte order exactly.
    let mut s = LearnStats {
        trace_length: decode_usize(r)?,
        predicate_count: decode_usize(r)?,
        alphabet_size: decode_usize(r)?,
        solver_windows: decode_usize(r)?,
        shards: decode_usize(r)?,
        ..LearnStats::default()
    };
    let shard_len = r.length(8)?;
    s.shard_windows = Vec::with_capacity(shard_len);
    for _ in 0..shard_len {
        s.shard_windows.push(decode_usize(r)?);
    }
    s.peak_resident_observations = decode_usize(r)?;
    s.sat_queries = decode_usize(r)?;
    s.solvers_constructed = decode_usize(r)?;
    s.reused_learnt_clauses = r.u64()?;
    s.minimized_literals = r.u64()?;
    let buckets = r.length(8)?;
    if buckets != s.lbd_histogram.len() {
        return Err(malformed(format!(
            "lbd histogram has {buckets} buckets, this build expects {}",
            s.lbd_histogram.len()
        )));
    }
    for bucket in s.lbd_histogram.iter_mut() {
        *bucket = r.u64()?;
    }
    s.refinements = decode_usize(r)?;
    s.states = decode_usize(r)?;
    s.threads_used = decode_usize(r)?;
    s.speculative_solves = decode_usize(r)?;
    s.cancelled_solves = decode_usize(r)?;
    s.ingest_time = decode_duration(r)?;
    s.synthesis_time = decode_duration(r)?;
    s.segmentation_time = decode_duration(r)?;
    s.solver_time = decode_duration(r)?;
    s.total_time = decode_duration(r)?;
    Ok(s)
}

// ---- public API ----------------------------------------------------------

/// Encodes a model snapshot as a complete envelope.
pub fn encode_model(snapshot: &ModelSnapshot) -> Vec<u8> {
    let mut w = Writer::new();
    encode_config(&mut w, &snapshot.config);
    encode_signature(&mut w, snapshot.model.signature());
    encode_symbols(&mut w, snapshot.model.symbols());
    encode_alphabet(&mut w, snapshot.model.alphabet());
    encode_nfa(&mut w, snapshot.model.automaton());
    let sequences = snapshot.model.predicate_sequences();
    w.length(sequences.len());
    for sequence in sequences {
        encode_pred_seq(&mut w, sequence);
    }
    encode_stats(&mut w, &snapshot.model.stats());
    envelope::encode(SnapshotKind::Model, &w.into_bytes())
}

/// Decodes a model snapshot from envelope bytes.
///
/// # Errors
///
/// Any damage or inconsistency yields a typed [`PersistError`]; a
/// successfully decoded model passed [`LearnedModel::from_parts`] validation.
pub fn decode_model(bytes: &[u8]) -> Result<ModelSnapshot, PersistError> {
    let payload = envelope::decode(bytes, SnapshotKind::Model)?;
    let mut r = Reader::new(payload);
    let config = decode_config(&mut r)?;
    let signature = decode_signature(&mut r)?;
    let symbols = decode_symbols(&mut r)?;
    let (alphabet, ids) = decode_alphabet(&mut r)?;
    let automaton = decode_nfa(&mut r, &ids)?;
    let num_sequences = r.length(8)?;
    let mut sequences = Vec::with_capacity(num_sequences);
    for _ in 0..num_sequences {
        sequences.push(decode_pred_seq(&mut r, &ids)?);
    }
    let stats = decode_stats(&mut r)?;
    r.finish()?;
    let model = LearnedModel::from_parts(automaton, alphabet, signature, symbols, sequences, stats)
        .map_err(|e| malformed(format!("model does not reassemble: {e}")))?;
    Ok(ModelSnapshot { config, model })
}

/// Saves a model snapshot to `path` crash-safely.
///
/// # Errors
///
/// Returns [`PersistError::Io`] on filesystem failure.
pub fn save_model(path: &Path, snapshot: &ModelSnapshot) -> Result<(), PersistError> {
    envelope::write_atomic(path, &encode_model(snapshot))
}

/// Loads and validates a model snapshot from `path`.
///
/// # Errors
///
/// As [`decode_model`], plus [`PersistError::Io`] for filesystem failures.
pub fn load_model(path: &Path) -> Result<ModelSnapshot, PersistError> {
    decode_model(&envelope::read_file(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracelearn_core::Learner;
    use tracelearn_workloads::counter;

    fn learned_snapshot() -> ModelSnapshot {
        let trace = counter::generate(&counter::CounterConfig {
            threshold: 8,
            length: 200,
        });
        let config = LearnerConfig::default();
        let model = Learner::new(config.clone()).learn(&trace).unwrap();
        ModelSnapshot { config, model }
    }

    #[test]
    fn learned_model_round_trips_exactly() {
        let snapshot = learned_snapshot();
        let bytes = encode_model(&snapshot);
        let restored = decode_model(&bytes).unwrap();
        // The restored model must be indistinguishable from the original in
        // every observable respect.
        assert_eq!(
            restored.model.automaton().transitions(),
            snapshot.model.automaton().transitions()
        );
        assert_eq!(
            restored.model.automaton().initial(),
            snapshot.model.automaton().initial()
        );
        assert_eq!(
            restored.model.predicate_sequences(),
            snapshot.model.predicate_sequences()
        );
        assert_eq!(
            restored.model.predicate_strings(),
            snapshot.model.predicate_strings()
        );
        assert_eq!(restored.model.stats(), snapshot.model.stats());
        assert_eq!(restored.config, snapshot.config);
        // And re-encoding is byte-stable.
        assert_eq!(encode_model(&restored), bytes);
    }

    #[test]
    fn corrupt_payloads_are_typed_errors_never_panics() {
        let bytes = encode_model(&learned_snapshot());
        // Every truncation of the whole file.
        for cut in 0..bytes.len() {
            assert!(
                decode_model(&bytes[..cut]).is_err(),
                "prefix {cut} accepted"
            );
        }
        // Single-byte corruption across the whole file (every offset, one
        // deterministic flip each — the envelope checksum catches them all).
        for offset in 0..bytes.len() {
            let mut damaged = bytes.clone();
            damaged[offset] ^= 0x41;
            assert!(
                decode_model(&damaged).is_err(),
                "corruption at {offset} accepted"
            );
        }
    }
}
