//! The snapshot envelope: magic, kind, version, length, checksum — and the
//! crash-safe file protocol around it.
//!
//! Every snapshot file is one envelope:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"TLSNAP1\0"
//! 8       2     kind   (u16 LE, see SnapshotKind)
//! 10      2     version (u16 LE, per-kind codec version)
//! 12      8     payload length (u64 LE)
//! 20      n     payload
//! 20+n    8     CRC-64/XZ over bytes [0, 20+n) (u64 LE)
//! ```
//!
//! Files are published with write-temp → fsync → atomic rename → fsync of
//! the parent directory, so a reader never observes a half-written file
//! under the final name on a well-behaved filesystem — and if one appears
//! anyway (torn write, bit rot, truncation), [`decode`] detects and rejects
//! it with a typed [`PersistError`] instead of loading garbage.

use crate::error::PersistError;
use crate::inject;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// The 8-byte file magic: `TLSNAP` + format generation + NUL.
pub const MAGIC: [u8; 8] = *b"TLSNAP1\0";

/// Envelope overhead: magic + kind + version + length header, and the
/// checksum trailer.
pub const HEADER_LEN: usize = 20;
/// Length of the checksum trailer.
pub const TRAILER_LEN: usize = 8;

/// What a snapshot file contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotKind {
    /// A learned model plus the learner configuration it was learned with.
    Model,
    /// Learner warm-start state: window collector + forbidden sequences.
    WarmStart,
    /// One serving stream's replay log and monitor-session checkpoint.
    Stream,
    /// The serving registry manifest: model names, specs and versions.
    Registry,
}

impl SnapshotKind {
    /// The wire code of this kind.
    pub fn code(self) -> u16 {
        match self {
            SnapshotKind::Model => 1,
            SnapshotKind::WarmStart => 2,
            SnapshotKind::Stream => 3,
            SnapshotKind::Registry => 4,
        }
    }

    /// The newest codec version this build writes (and the only one it
    /// reads; the version field exists so future builds can fan out).
    pub fn current_version(self) -> u16 {
        1
    }
}

/// CRC-64/XZ (reflected ECMA-182 polynomial) — the integrity check of the
/// envelope. Chosen over a 32-bit check because snapshots can reach many
/// megabytes, and over a cryptographic hash because the threat model is
/// corruption, not forgery.
pub fn crc64(bytes: &[u8]) -> u64 {
    fn table() -> &'static [u64; 256] {
        static TABLE: std::sync::OnceLock<[u64; 256]> = std::sync::OnceLock::new();
        TABLE.get_or_init(|| {
            // Reflected ECMA-182 polynomial, as used by CRC-64/XZ.
            const POLY: u64 = 0xC96C_5795_D787_0F42;
            std::array::from_fn(|i| {
                let mut crc = i as u64;
                for _ in 0..8 {
                    crc = if crc & 1 != 0 {
                        (crc >> 1) ^ POLY
                    } else {
                        crc >> 1
                    };
                }
                crc
            })
        })
    }
    let table = table();
    let mut crc = !0u64;
    for &byte in bytes {
        // The index is masked to 0..256, so the lookup can never miss; the
        // fallback exists to keep the lookup total.
        let entry = table.get(((crc ^ byte as u64) & 0xFF) as usize);
        crc = (crc >> 8) ^ entry.copied().unwrap_or_default();
    }
    !crc
}

/// Wraps `payload` in a complete envelope for `kind` at its current version.
pub fn encode(kind: SnapshotKind, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&kind.code().to_le_bytes());
    out.extend_from_slice(&kind.current_version().to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc64(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Validates an envelope and returns its payload slice.
///
/// # Errors
///
/// Every way `bytes` can fail to be a well-formed, intact envelope of
/// `expected` kind maps to its own [`PersistError`] variant; see the check
/// order in the implementation (magic, length, checksum, kind, version).
pub fn decode(bytes: &[u8], expected: SnapshotKind) -> Result<&[u8], PersistError> {
    // Total reads of the header/trailer fields: a miss is a truncation.
    let truncated = |needed| PersistError::Truncated {
        needed,
        got: bytes.len(),
    };
    let le_u16 = |at: usize| -> Option<u16> {
        let field = bytes.get(at..at.checked_add(2)?)?;
        Some(u16::from_le_bytes(field.try_into().ok()?))
    };
    let le_u64 = |at: usize| -> Option<u64> {
        let field = bytes.get(at..at.checked_add(8)?)?;
        Some(u64::from_le_bytes(field.try_into().ok()?))
    };
    if bytes.len() < HEADER_LEN + TRAILER_LEN {
        return Err(truncated(HEADER_LEN + TRAILER_LEN));
    }
    if bytes.get(..8) != Some(MAGIC.as_slice()) {
        return Err(PersistError::BadMagic);
    }
    let kind = le_u16(8).ok_or_else(|| truncated(HEADER_LEN))?;
    let version = le_u16(10).ok_or_else(|| truncated(HEADER_LEN))?;
    let payload_len = le_u64(12).ok_or_else(|| truncated(HEADER_LEN))?;
    let payload_len = usize::try_from(payload_len).map_err(|_| truncated(usize::MAX))?;
    let total = HEADER_LEN
        .checked_add(payload_len)
        .and_then(|n| n.checked_add(TRAILER_LEN))
        .ok_or_else(|| truncated(usize::MAX))?;
    if bytes.len() < total {
        return Err(truncated(total));
    }
    if bytes.len() > total {
        return Err(PersistError::TrailingBytes {
            extra: bytes.len() - total,
        });
    }
    let stored = le_u64(total - TRAILER_LEN).ok_or_else(|| truncated(total))?;
    let checked = bytes
        .get(..total - TRAILER_LEN)
        .ok_or_else(|| truncated(total))?;
    if crc64(checked) != stored {
        return Err(PersistError::ChecksumMismatch);
    }
    if kind != expected.code() {
        return Err(PersistError::WrongKind {
            expected: expected.code(),
            found: kind,
        });
    }
    if version != expected.current_version() {
        return Err(PersistError::UnsupportedVersion { kind, version });
    }
    bytes
        .get(HEADER_LEN..HEADER_LEN + payload_len)
        .ok_or_else(|| truncated(total))
}

/// Publishes `bytes` at `path` crash-safely: write to a `.tmp` sibling,
/// fsync it, atomically rename it over `path`, and fsync the parent
/// directory so the rename itself is durable.
///
/// # Errors
///
/// Returns [`PersistError::Io`] on any filesystem failure; the temp file is
/// removed on a failed rename so retries start clean.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    let parent = path.parent().filter(|p| !p.as_os_str().is_empty());
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut file = fs::File::create(&tmp)?;
        // A torn-write fault cuts the bytes short and skips the fsync —
        // the crash image of a host that died mid-write — but still lets
        // the rename land so the loader must catch the damage.
        match inject::torn_write_len(bytes.len()) {
            Some(cut) => {
                file.write_all(bytes.get(..cut).unwrap_or(bytes))?;
            }
            None => {
                file.write_all(bytes)?;
                file.sync_all()?;
            }
        }
    }
    if inject::rename_fails() {
        let _ = fs::remove_file(&tmp);
        return Err(PersistError::Io(std::io::Error::other(
            "fault-injection: injected persist.rename failure",
        )));
    }
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(PersistError::Io(e));
    }
    if let Some(parent) = parent {
        // Directory fsync makes the rename durable; not all platforms allow
        // opening a directory for sync, so failures here are best-effort.
        if let Ok(dir) = fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// Reads a snapshot file whole. A `persist.short` fault truncates the
/// returned bytes at a seeded offset, as if the read raced a truncation.
///
/// # Errors
///
/// Returns [`PersistError::Io`] on any filesystem failure.
pub fn read_file(path: &Path) -> Result<Vec<u8>, PersistError> {
    let mut bytes = fs::read(path)?;
    if let Some(cut) = inject::short_read_len(bytes.len()) {
        bytes.truncate(cut);
    }
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc64_matches_known_vector() {
        // CRC-64/XZ check value for "123456789".
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn envelope_round_trips() {
        let payload = b"some payload bytes";
        let bytes = encode(SnapshotKind::Model, payload);
        assert_eq!(decode(&bytes, SnapshotKind::Model).unwrap(), payload);
    }

    #[test]
    fn every_truncation_prefix_is_rejected() {
        let bytes = encode(SnapshotKind::Stream, b"0123456789");
        for cut in 0..bytes.len() {
            let err = decode(&bytes[..cut], SnapshotKind::Stream).unwrap_err();
            assert!(
                matches!(err, PersistError::Truncated { .. } | PersistError::BadMagic),
                "prefix of {cut} bytes gave {err:?}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let bytes = encode(SnapshotKind::WarmStart, b"payload");
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.clone();
                flipped[byte] ^= 1 << bit;
                assert!(
                    decode(&flipped, SnapshotKind::WarmStart).is_err(),
                    "flip at byte {byte} bit {bit} was accepted"
                );
            }
        }
    }

    #[test]
    fn kind_version_and_trailing_bytes_are_typed() {
        let bytes = encode(SnapshotKind::Model, b"p");
        assert!(matches!(
            decode(&bytes, SnapshotKind::Stream),
            Err(PersistError::WrongKind {
                expected: 3,
                found: 1
            })
        ));
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(matches!(
            decode(&extra, SnapshotKind::Model),
            Err(PersistError::TrailingBytes { extra: 1 })
        ));
        let mut not_snap = bytes.clone();
        not_snap[0] = b'X';
        assert!(matches!(
            decode(&not_snap, SnapshotKind::Model),
            Err(PersistError::BadMagic)
        ));
        // A future version is refused, not misread. The version bytes are
        // covered by the checksum, so the trailer must be recomputed.
        let mut future = bytes;
        future[10] = 9;
        let total = future.len();
        let crc = crc64(&future[..total - TRAILER_LEN]).to_le_bytes();
        future[total - TRAILER_LEN..].copy_from_slice(&crc);
        assert!(matches!(
            decode(&future, SnapshotKind::Model),
            Err(PersistError::UnsupportedVersion {
                kind: 1,
                version: 9
            })
        ));
    }

    #[test]
    fn write_atomic_publishes_and_read_file_round_trips() {
        let dir =
            std::env::temp_dir().join(format!("tracelearn-persist-env-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.bin");
        let bytes = encode(SnapshotKind::Registry, b"manifest");
        write_atomic(&path, &bytes).unwrap();
        // Overwrite: the rename replaces the old snapshot atomically.
        let newer = encode(SnapshotKind::Registry, b"manifest-v2");
        write_atomic(&path, &newer).unwrap();
        let read = read_file(&path).unwrap();
        assert_eq!(
            decode(&read, SnapshotKind::Registry).unwrap(),
            b"manifest-v2"
        );
        assert!(!dir.join("snap.bin.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
