//! Wire primitives: little-endian, length-prefixed, allocation-checked.
//!
//! Every codec in this crate is built from these two types. [`Writer`] is an
//! append-only byte buffer; [`Reader`] is a cursor that returns a typed
//! [`PersistError`] instead of panicking on any malformed input. Length
//! prefixes are validated against the bytes actually remaining *before*
//! allocating, so a corrupted length can never request an absurd allocation.

use crate::error::PersistError;

/// An append-only encode buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`, little-endian two's complement.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `bool` as one byte (0 or 1).
    pub fn boolean(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends a `usize` as a `u64` (the format is 64-bit everywhere).
    pub fn length(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends raw bytes without a length prefix.
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.length(bytes.len());
        self.raw(bytes);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn string(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }
}

/// A decode cursor over a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed — codecs check this at the end
    /// so a payload with spare bytes is rejected, not silently accepted.
    pub fn finish(&self) -> Result<(), PersistError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(PersistError::Malformed(format!(
                "{} unconsumed payload bytes",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let truncated = |end| PersistError::Truncated {
            needed: end,
            got: self.buf.len(),
        };
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| truncated(usize::MAX))?;
        let slice = self.buf.get(self.pos..end).ok_or_else(|| truncated(end))?;
        self.pos = end;
        Ok(slice)
    }

    /// Reads `N` bytes as a fixed-size array.
    fn array<const N: usize>(&mut self) -> Result<[u8; N], PersistError> {
        self.take(N)?
            .try_into()
            .map_err(|_| PersistError::Truncated {
                needed: self.pos.saturating_add(N),
                got: self.buf.len(),
            })
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(u8::from_le_bytes(self.array::<1>()?))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.array::<4>()?))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.array::<8>()?))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, PersistError> {
        Ok(self.u64()? as i64)
    }

    /// Reads a one-byte `bool`, rejecting anything but 0 or 1.
    pub fn boolean(&mut self) -> Result<bool, PersistError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(PersistError::Malformed(format!(
                "boolean byte {other} (expected 0 or 1)"
            ))),
        }
    }

    /// Reads a `u64` length prefix and validates that at least
    /// `min_element_bytes × length` bytes remain, so a corrupted length can
    /// never drive an oversized allocation.
    pub fn length(&mut self, min_element_bytes: usize) -> Result<usize, PersistError> {
        let len = self.u64()?;
        let len = usize::try_from(len)
            .map_err(|_| PersistError::Malformed(format!("length {len} overflows usize")))?;
        let needed = len
            .checked_mul(min_element_bytes.max(1))
            .ok_or_else(|| PersistError::Malformed(format!("length {len} overflows the buffer")))?;
        if needed > self.remaining() {
            return Err(PersistError::Truncated {
                needed: self.pos.saturating_add(needed),
                got: self.buf.len(),
            });
        }
        Ok(len)
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], PersistError> {
        let len = self.length(1)?;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, PersistError> {
        let bytes = self.bytes()?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| PersistError::Malformed(format!("invalid utf-8 string: {e}")))
    }

    /// Reads an option tag (see [`Writer::option`]).
    pub fn option(&mut self) -> Result<bool, PersistError> {
        self.boolean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.i64(-42);
        w.boolean(true);
        w.string("héllo");
        w.bytes(&[1, 2, 3]);
        // An option is its tag byte followed by the payload when present.
        w.boolean(true);
        w.u8(5);
        w.boolean(false);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i64().unwrap(), -42);
        assert!(r.boolean().unwrap());
        assert_eq!(r.string().unwrap(), "héllo");
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        assert!(r.option().unwrap());
        assert_eq!(r.u8().unwrap(), 5);
        assert!(!r.option().unwrap());
        r.finish().unwrap();
    }

    #[test]
    fn truncation_and_garbage_are_typed() {
        let mut r = Reader::new(&[1, 2]);
        assert!(matches!(r.u32(), Err(PersistError::Truncated { .. })));
        // A bogus length prefix cannot drive an allocation.
        let mut w = Writer::new();
        w.u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(r.bytes().is_err());
        // Boolean bytes other than 0/1 are rejected.
        let mut r = Reader::new(&[3]);
        assert!(matches!(r.boolean(), Err(PersistError::Malformed(_))));
        // Unconsumed bytes are an error.
        let r = Reader::new(&[0]);
        assert!(r.finish().is_err());
    }
}
