//! Typed expression language for transition predicates.
//!
//! Transition predicates of the learned automaton relate the current
//! observation (unprimed variables `X`) to the next observation (primed
//! variables `X'`). This crate defines:
//!
//! * [`VarRef`] — a reference to either `x` or `x'` for a trace variable;
//! * [`IntTerm`] — integer-valued terms (constants, variables, `+`, `−`,
//!   scaling, `ite`);
//! * [`Predicate`] — boolean formulas over comparison atoms, event equality
//!   and boolean variables, closed under `∧`, `∨`, `¬`;
//! * evaluation of both against a [`StepPair`](tracelearn_trace::StepPair);
//! * simplification and human-readable rendering.
//!
//! # Example
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use tracelearn_expr::{IntTerm, Predicate, VarRef};
//! use tracelearn_trace::{Signature, Trace, Value};
//!
//! let sig = Signature::builder().int("x").build();
//! let mut trace = Trace::new(sig.clone());
//! trace.push_row([Value::Int(3)])?;
//! trace.push_row([Value::Int(4)])?;
//!
//! // x' = x + 1
//! let x = sig.var("x").unwrap();
//! let pred = Predicate::eq(
//!     IntTerm::var(VarRef::next(x)),
//!     IntTerm::var(VarRef::current(x)) + IntTerm::constant(1),
//! );
//! let step = trace.steps().next().unwrap();
//! assert_eq!(pred.eval(&step), Some(true));
//! assert_eq!(pred.render(&sig, trace.symbols()), "(x' = (x + 1))");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pred;
mod render;
mod simplify;
mod term;

pub use crate::pred::{CmpOp, Predicate};
pub use crate::term::{IntTerm, VarRef};
