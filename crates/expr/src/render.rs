//! Human-readable rendering of terms and predicates.
//!
//! Rendering needs the trace [`Signature`] for variable names and the
//! [`SymbolTable`] for event names, so it is provided as `render` methods
//! taking both rather than a bare `Display` impl.

use crate::pred::Predicate;
use crate::term::{IntTerm, VarRef};
use tracelearn_trace::{Signature, SymbolTable};

impl VarRef {
    /// Renders the variable reference as `name` or `name'`.
    pub fn render(&self, signature: &Signature) -> String {
        let name = signature.variable(self.var).name();
        if self.primed {
            format!("{name}'")
        } else {
            name.to_owned()
        }
    }
}

impl IntTerm {
    /// Renders the term using variable names from `signature`.
    pub fn render(&self, signature: &Signature, symbols: &SymbolTable) -> String {
        match self {
            IntTerm::Const(c) => c.to_string(),
            IntTerm::Var(v) => v.render(signature),
            IntTerm::Add(a, b) => format!(
                "({} + {})",
                a.render(signature, symbols),
                b.render(signature, symbols)
            ),
            IntTerm::Sub(a, b) => format!(
                "({} - {})",
                a.render(signature, symbols),
                b.render(signature, symbols)
            ),
            IntTerm::Scale(k, t) => format!("({k} * {})", t.render(signature, symbols)),
            IntTerm::Ite(c, a, b) => format!(
                "ite({}, {}, {})",
                c.render(signature, symbols),
                a.render(signature, symbols),
                b.render(signature, symbols)
            ),
        }
    }
}

impl Predicate {
    /// Renders the predicate using variable names from `signature` and event
    /// names from `symbols`.
    ///
    /// # Example
    ///
    /// ```
    /// use tracelearn_expr::{IntTerm, Predicate, VarRef};
    /// use tracelearn_trace::{Signature, SymbolTable};
    ///
    /// let sig = Signature::builder().int("x").build();
    /// let x = sig.var("x").unwrap();
    /// let p = Predicate::ge(IntTerm::var(VarRef::current(x)), IntTerm::constant(128));
    /// assert_eq!(p.render(&sig, &SymbolTable::new()), "(x ≥ 128)");
    /// ```
    pub fn render(&self, signature: &Signature, symbols: &SymbolTable) -> String {
        match self {
            Predicate::True => "true".to_owned(),
            Predicate::False => "false".to_owned(),
            Predicate::Cmp { op, lhs, rhs } => format!(
                "({} {} {})",
                lhs.render(signature, symbols),
                op.symbol(),
                rhs.render(signature, symbols)
            ),
            Predicate::EventIs { var, symbol } => format!(
                "{} = {}",
                var.render(signature),
                symbols.name(*symbol).unwrap_or("<unknown>")
            ),
            Predicate::BoolVar { var, negated } => {
                if *negated {
                    format!("¬{}", var.render(signature))
                } else {
                    var.render(signature)
                }
            }
            Predicate::Not(inner) => format!("¬{}", inner.render(signature, symbols)),
            Predicate::And(parts) => {
                let rendered: Vec<String> =
                    parts.iter().map(|p| p.render(signature, symbols)).collect();
                format!("({})", rendered.join(" ∧ "))
            }
            Predicate::Or(parts) => {
                let rendered: Vec<String> =
                    parts.iter().map(|p| p.render(signature, symbols)).collect();
                format!("({})", rendered.join(" ∨ "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::CmpOp;
    use tracelearn_trace::Signature;

    fn sig() -> Signature {
        Signature::builder()
            .int("op")
            .int("ip")
            .event("ev")
            .boolean("b")
            .build()
    }

    #[test]
    fn renders_update_predicate() {
        let s = sig();
        let op = s.var("op").unwrap();
        let ip = s.var("ip").unwrap();
        let p = Predicate::update(
            op,
            IntTerm::var(VarRef::current(op)) + IntTerm::var(VarRef::current(ip)),
        );
        assert_eq!(p.render(&s, &SymbolTable::new()), "(op' = (op + ip))");
    }

    #[test]
    fn renders_saturation_guard() {
        let s = sig();
        let op = s.var("op").unwrap();
        let ip = s.var("ip").unwrap();
        let p = Predicate::or(vec![
            Predicate::and(vec![
                Predicate::eq(IntTerm::var(VarRef::current(op)), IntTerm::constant(5)),
                Predicate::eq(IntTerm::var(VarRef::current(ip)), IntTerm::constant(1)),
            ]),
            Predicate::and(vec![
                Predicate::eq(IntTerm::var(VarRef::current(op)), IntTerm::constant(-5)),
                Predicate::eq(IntTerm::var(VarRef::current(ip)), IntTerm::constant(-1)),
            ]),
        ]);
        assert_eq!(
            p.render(&s, &SymbolTable::new()),
            "(((op = 5) ∧ (ip = 1)) ∨ ((op = -5) ∧ (ip = -1)))"
        );
    }

    #[test]
    fn renders_events_and_bools() {
        let s = sig();
        let mut symbols = SymbolTable::new();
        let read = symbols.intern("read");
        let ev = s.var("ev").unwrap();
        let b = s.var("b").unwrap();
        assert_eq!(
            Predicate::event_is(VarRef::next(ev), read).render(&s, &symbols),
            "ev' = read"
        );
        assert_eq!(
            Predicate::BoolVar {
                var: VarRef::current(b),
                negated: true
            }
            .render(&s, &symbols),
            "¬b"
        );
    }

    #[test]
    fn renders_other_operators() {
        let s = sig();
        let op = s.var("op").unwrap();
        let p = Predicate::cmp(
            CmpOp::Ne,
            IntTerm::var(VarRef::current(op)),
            IntTerm::Scale(2, Box::new(IntTerm::constant(3))),
        );
        assert_eq!(p.render(&s, &SymbolTable::new()), "(op ≠ (2 * 3))");
        let ite = IntTerm::ite(Predicate::True, IntTerm::constant(1), IntTerm::constant(0));
        assert_eq!(ite.render(&s, &SymbolTable::new()), "ite(true, 1, 0)");
        assert_eq!(Predicate::False.render(&s, &SymbolTable::new()), "false");
        assert_eq!(
            Predicate::True.negate().render(&s, &SymbolTable::new()),
            "false"
        );
    }
}
