//! Conservative, semantics-preserving simplification of terms and predicates.
//!
//! The synthesiser enumerates syntactically small expressions, but predicate
//! combination (e.g. conjoining per-variable updates, or disjoining branch
//! behaviours) can introduce redundancy. `simplify` performs constant
//! folding, neutral-element elimination, flattening of nested conjunctions
//! and disjunctions and duplicate removal. It never changes the value of the
//! expression on any step pair — a property checked by the proptests below.

use crate::pred::Predicate;
use crate::term::IntTerm;

impl IntTerm {
    /// Returns a simplified term with the same semantics.
    pub fn simplify(&self) -> IntTerm {
        match self {
            IntTerm::Const(_) | IntTerm::Var(_) => self.clone(),
            IntTerm::Add(a, b) => {
                let (a, b) = (a.simplify(), b.simplify());
                match (&a, &b) {
                    (IntTerm::Const(x), IntTerm::Const(y)) => match x.checked_add(*y) {
                        Some(sum) => IntTerm::Const(sum),
                        None => IntTerm::Add(Box::new(a), Box::new(b)),
                    },
                    (IntTerm::Const(0), _) => b,
                    (_, IntTerm::Const(0)) => a,
                    // Adding a negative constant reads better as a subtraction.
                    (_, IntTerm::Const(c)) if *c < 0 && *c != i64::MIN => {
                        IntTerm::Sub(Box::new(a), Box::new(IntTerm::Const(-c)))
                    }
                    _ => IntTerm::Add(Box::new(a), Box::new(b)),
                }
            }
            IntTerm::Sub(a, b) => {
                let (a, b) = (a.simplify(), b.simplify());
                match (&a, &b) {
                    (IntTerm::Const(x), IntTerm::Const(y)) => match x.checked_sub(*y) {
                        Some(diff) => IntTerm::Const(diff),
                        None => IntTerm::Sub(Box::new(a), Box::new(b)),
                    },
                    (_, IntTerm::Const(0)) => a,
                    // Subtracting a negative constant reads better as an addition.
                    (_, IntTerm::Const(c)) if *c < 0 && *c != i64::MIN => {
                        IntTerm::Add(Box::new(a), Box::new(IntTerm::Const(-c)))
                    }
                    _ => IntTerm::Sub(Box::new(a), Box::new(b)),
                }
            }
            IntTerm::Scale(k, t) => {
                let t = t.simplify();
                match (k, &t) {
                    (0, _) => IntTerm::Const(0),
                    (1, _) => t,
                    (k, IntTerm::Const(c)) => match c.checked_mul(*k) {
                        Some(prod) => IntTerm::Const(prod),
                        None => IntTerm::Scale(*k, Box::new(t)),
                    },
                    _ => IntTerm::Scale(*k, Box::new(t)),
                }
            }
            IntTerm::Ite(c, a, b) => {
                let c = c.simplify();
                let (a, b) = (a.simplify(), b.simplify());
                match &c {
                    Predicate::True => a,
                    Predicate::False => b,
                    _ if a == b => a,
                    _ => IntTerm::Ite(Box::new(c), Box::new(a), Box::new(b)),
                }
            }
        }
    }
}

impl Predicate {
    /// Returns a simplified predicate with the same semantics.
    pub fn simplify(&self) -> Predicate {
        match self {
            Predicate::True | Predicate::False => self.clone(),
            Predicate::Cmp { op, lhs, rhs } => {
                let (lhs, rhs) = (lhs.simplify(), rhs.simplify());
                if let (IntTerm::Const(a), IntTerm::Const(b)) = (&lhs, &rhs) {
                    return if op.apply(*a, *b) {
                        Predicate::True
                    } else {
                        Predicate::False
                    };
                }
                Predicate::Cmp { op: *op, lhs, rhs }
            }
            Predicate::EventIs { .. } | Predicate::BoolVar { .. } => self.clone(),
            Predicate::Not(inner) => inner.simplify().negate(),
            Predicate::And(parts) => {
                let mut flat = Vec::new();
                for p in parts {
                    match p.simplify() {
                        Predicate::True => {}
                        Predicate::False => return Predicate::False,
                        Predicate::And(nested) => flat.extend(nested),
                        other => flat.push(other),
                    }
                }
                dedup_preserving_order(&mut flat);
                Predicate::and(flat)
            }
            Predicate::Or(parts) => {
                let mut flat = Vec::new();
                for p in parts {
                    match p.simplify() {
                        Predicate::False => {}
                        Predicate::True => return Predicate::True,
                        Predicate::Or(nested) => flat.extend(nested),
                        other => flat.push(other),
                    }
                }
                dedup_preserving_order(&mut flat);
                Predicate::or(flat)
            }
        }
    }
}

fn dedup_preserving_order(parts: &mut Vec<Predicate>) {
    let mut seen: Vec<Predicate> = Vec::new();
    parts.retain(|p| {
        if seen.contains(p) {
            false
        } else {
            seen.push(p.clone());
            true
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::CmpOp;
    use crate::term::VarRef;
    use proptest::prelude::*;
    use tracelearn_trace::{Signature, Trace, Value, VarId};

    fn x() -> VarId {
        VarId::new(0)
    }

    fn cur_x() -> IntTerm {
        IntTerm::var(VarRef::current(x()))
    }

    #[test]
    fn constant_folding() {
        let t = IntTerm::constant(2) + IntTerm::constant(3);
        assert_eq!(t.simplify(), IntTerm::Const(5));
        let t = IntTerm::Scale(4, Box::new(IntTerm::constant(2)));
        assert_eq!(t.simplify(), IntTerm::Const(8));
        let t = IntTerm::constant(7) - IntTerm::constant(7);
        assert_eq!(t.simplify(), IntTerm::Const(0));
    }

    #[test]
    fn neutral_elements() {
        assert_eq!((cur_x() + IntTerm::constant(0)).simplify(), cur_x());
        assert_eq!((IntTerm::constant(0) + cur_x()).simplify(), cur_x());
        assert_eq!((cur_x() - IntTerm::constant(0)).simplify(), cur_x());
        assert_eq!(IntTerm::Scale(1, Box::new(cur_x())).simplify(), cur_x());
        assert_eq!(
            IntTerm::Scale(0, Box::new(cur_x())).simplify(),
            IntTerm::Const(0)
        );
    }

    #[test]
    fn ite_collapse() {
        let t = IntTerm::ite(Predicate::True, cur_x(), IntTerm::constant(9));
        assert_eq!(t.simplify(), cur_x());
        let t = IntTerm::ite(Predicate::False, cur_x(), IntTerm::constant(9));
        assert_eq!(t.simplify(), IntTerm::Const(9));
        let t = IntTerm::ite(
            Predicate::ge(cur_x(), IntTerm::constant(1)),
            IntTerm::constant(4),
            IntTerm::constant(4),
        );
        assert_eq!(t.simplify(), IntTerm::Const(4));
    }

    #[test]
    fn predicate_constant_folding() {
        let p = Predicate::cmp(CmpOp::Lt, IntTerm::constant(1), IntTerm::constant(2));
        assert_eq!(p.simplify(), Predicate::True);
        let p = Predicate::cmp(CmpOp::Eq, IntTerm::constant(1), IntTerm::constant(2));
        assert_eq!(p.simplify(), Predicate::False);
    }

    #[test]
    fn and_or_flattening_and_dedup() {
        let atom = Predicate::ge(cur_x(), IntTerm::constant(3));
        let nested = Predicate::And(vec![
            atom.clone(),
            Predicate::And(vec![atom.clone(), Predicate::True]),
        ]);
        assert_eq!(nested.simplify(), atom);
        let or = Predicate::Or(vec![
            Predicate::False,
            atom.clone(),
            Predicate::Or(vec![atom.clone()]),
        ]);
        assert_eq!(or.simplify(), atom);
        let poisoned = Predicate::And(vec![atom.clone(), Predicate::False]);
        assert_eq!(poisoned.simplify(), Predicate::False);
        let tautology = Predicate::Or(vec![atom, Predicate::True]);
        assert_eq!(tautology.simplify(), Predicate::True);
    }

    #[test]
    fn not_simplification() {
        let atom = Predicate::ge(cur_x(), IntTerm::constant(3));
        assert_eq!(
            Predicate::Not(Box::new(Predicate::True)).simplify(),
            Predicate::False
        );
        assert_eq!(
            Predicate::Not(Box::new(Predicate::Not(Box::new(atom.clone())))).simplify(),
            atom
        );
    }

    // --- Property tests: simplification preserves semantics. -------------

    /// A small strategy of terms over a single integer variable `x`.
    fn term_strategy() -> impl Strategy<Value = IntTerm> {
        let leaf = prop_oneof![
            (-8i64..8).prop_map(IntTerm::Const),
            Just(IntTerm::var(VarRef::current(VarId::new(0)))),
            Just(IntTerm::var(VarRef::next(VarId::new(0)))),
        ];
        leaf.prop_recursive(3, 24, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a - b),
                ((-3i64..4), inner).prop_map(|(k, t)| IntTerm::Scale(k, Box::new(t))),
            ]
        })
    }

    fn pred_strategy() -> impl Strategy<Value = Predicate> {
        let atom = (term_strategy(), term_strategy(), 0usize..6)
            .prop_map(|(a, b, op)| Predicate::cmp(CmpOp::all()[op], a, b));
        atom.prop_recursive(3, 24, 3, |inner| {
            prop_oneof![
                proptest::collection::vec(inner.clone(), 1..3).prop_map(Predicate::And),
                proptest::collection::vec(inner.clone(), 1..3).prop_map(Predicate::Or),
                inner.prop_map(|p| Predicate::Not(Box::new(p))),
            ]
        })
    }

    fn sample_trace(a: i64, b: i64) -> Trace {
        let sig = Signature::builder().int("x").build();
        let mut t = Trace::new(sig);
        t.push_row([Value::Int(a)]).unwrap();
        t.push_row([Value::Int(b)]).unwrap();
        t
    }

    proptest! {
        #[test]
        fn term_simplify_preserves_semantics(t in term_strategy(), a in -10i64..10, b in -10i64..10) {
            let trace = sample_trace(a, b);
            let step = trace.steps().next().unwrap();
            prop_assert_eq!(t.simplify().eval(&step), t.eval(&step));
        }

        #[test]
        fn pred_simplify_preserves_semantics(p in pred_strategy(), a in -10i64..10, b in -10i64..10) {
            let trace = sample_trace(a, b);
            let step = trace.steps().next().unwrap();
            prop_assert_eq!(p.simplify().eval(&step), p.eval(&step));
        }

        #[test]
        fn simplify_never_grows(p in pred_strategy()) {
            prop_assert!(p.simplify().size() <= p.size());
        }
    }
}
