//! Integer-valued terms over current and next-state variables.

use serde::{Deserialize, Serialize};
use std::ops::{Add, Neg, Sub};
use tracelearn_trace::{StepPair, Value, VarId};

/// A reference to a trace variable, either in the current state (`x`) or in
/// the next state (`x'`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VarRef {
    /// The underlying trace variable.
    pub var: VarId,
    /// Whether this refers to the primed (next-state) copy.
    pub primed: bool,
}

impl VarRef {
    /// Refers to the current-state value of `var`.
    pub fn current(var: VarId) -> Self {
        VarRef { var, primed: false }
    }

    /// Refers to the next-state value of `var`.
    pub fn next(var: VarId) -> Self {
        VarRef { var, primed: true }
    }

    /// Resolves the reference against a step pair.
    pub fn value(&self, step: &StepPair<'_>) -> Value {
        if self.primed {
            step.next_value(self.var)
        } else {
            step.current_value(self.var)
        }
    }
}

/// An integer-valued term.
///
/// Terms are the right-hand sides of the update predicates `x' = next(x)`
/// synthesised by the learner: constants, variables, sums, differences,
/// constant scaling and conditional expressions.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IntTerm {
    /// An integer constant.
    Const(i64),
    /// The value of a (possibly primed) variable.
    Var(VarRef),
    /// Sum of two terms.
    Add(Box<IntTerm>, Box<IntTerm>),
    /// Difference of two terms.
    Sub(Box<IntTerm>, Box<IntTerm>),
    /// A term multiplied by an integer constant.
    Scale(i64, Box<IntTerm>),
    /// `if cond then a else b` where `cond` is a predicate.
    Ite(Box<crate::Predicate>, Box<IntTerm>, Box<IntTerm>),
}

impl IntTerm {
    /// A constant term.
    pub fn constant(value: i64) -> Self {
        IntTerm::Const(value)
    }

    /// A variable term.
    pub fn var(var: VarRef) -> Self {
        IntTerm::Var(var)
    }

    /// A conditional term.
    pub fn ite(cond: crate::Predicate, then: IntTerm, otherwise: IntTerm) -> Self {
        IntTerm::Ite(Box::new(cond), Box::new(then), Box::new(otherwise))
    }

    /// Evaluates the term against a step pair.
    ///
    /// Returns `None` when a referenced variable is not integer-valued, on
    /// arithmetic overflow, or when a nested condition cannot be evaluated.
    pub fn eval(&self, step: &StepPair<'_>) -> Option<i64> {
        match self {
            IntTerm::Const(c) => Some(*c),
            IntTerm::Var(v) => v.value(step).as_int(),
            IntTerm::Add(a, b) => a.eval(step)?.checked_add(b.eval(step)?),
            IntTerm::Sub(a, b) => a.eval(step)?.checked_sub(b.eval(step)?),
            IntTerm::Scale(k, t) => t.eval(step)?.checked_mul(*k),
            IntTerm::Ite(cond, then, otherwise) => {
                if cond.eval(step)? {
                    then.eval(step)
                } else {
                    otherwise.eval(step)
                }
            }
        }
    }

    /// Syntactic size of the term (number of AST nodes), the minimality
    /// metric used by the enumerative synthesiser.
    pub fn size(&self) -> usize {
        match self {
            IntTerm::Const(_) | IntTerm::Var(_) => 1,
            IntTerm::Add(a, b) | IntTerm::Sub(a, b) => 1 + a.size() + b.size(),
            IntTerm::Scale(_, t) => 1 + t.size(),
            IntTerm::Ite(c, a, b) => 1 + c.size() + a.size() + b.size(),
        }
    }

    /// Collects every variable reference appearing in the term.
    pub fn var_refs(&self, out: &mut Vec<VarRef>) {
        match self {
            IntTerm::Const(_) => {}
            IntTerm::Var(v) => out.push(*v),
            IntTerm::Add(a, b) | IntTerm::Sub(a, b) => {
                a.var_refs(out);
                b.var_refs(out);
            }
            IntTerm::Scale(_, t) => t.var_refs(out),
            IntTerm::Ite(c, a, b) => {
                c.var_refs(out);
                a.var_refs(out);
                b.var_refs(out);
            }
        }
    }

    /// Whether the term mentions any primed (next-state) variable.
    pub fn mentions_primed(&self) -> bool {
        let mut refs = Vec::new();
        self.var_refs(&mut refs);
        refs.iter().any(|r| r.primed)
    }
}

impl Add for IntTerm {
    type Output = IntTerm;

    fn add(self, rhs: IntTerm) -> IntTerm {
        IntTerm::Add(Box::new(self), Box::new(rhs))
    }
}

impl Sub for IntTerm {
    type Output = IntTerm;

    fn sub(self, rhs: IntTerm) -> IntTerm {
        IntTerm::Sub(Box::new(self), Box::new(rhs))
    }
}

impl Neg for IntTerm {
    type Output = IntTerm;

    fn neg(self) -> IntTerm {
        IntTerm::Scale(-1, Box::new(self))
    }
}

impl From<i64> for IntTerm {
    fn from(value: i64) -> Self {
        IntTerm::Const(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Predicate;
    use tracelearn_trace::{Signature, Trace};

    fn two_var_trace() -> (Trace, VarId, VarId) {
        let sig = Signature::builder().int("x").int("y").build();
        let x = sig.var("x").unwrap();
        let y = sig.var("y").unwrap();
        let mut t = Trace::new(sig);
        t.push_row([Value::Int(3), Value::Int(10)]).unwrap();
        t.push_row([Value::Int(4), Value::Int(8)]).unwrap();
        (t, x, y)
    }

    #[test]
    fn var_ref_resolution() {
        let (t, x, _) = two_var_trace();
        let step = t.steps().next().unwrap();
        assert_eq!(VarRef::current(x).value(&step), Value::Int(3));
        assert_eq!(VarRef::next(x).value(&step), Value::Int(4));
    }

    #[test]
    fn arithmetic_evaluation() {
        let (t, x, y) = two_var_trace();
        let step = t.steps().next().unwrap();
        let term = IntTerm::var(VarRef::current(x)) + IntTerm::var(VarRef::current(y));
        assert_eq!(term.eval(&step), Some(13));
        let term = IntTerm::var(VarRef::next(y)) - IntTerm::constant(3);
        assert_eq!(term.eval(&step), Some(5));
        let term = IntTerm::Scale(2, Box::new(IntTerm::var(VarRef::current(x))));
        assert_eq!(term.eval(&step), Some(6));
        let term = -IntTerm::constant(7);
        assert_eq!(term.eval(&step), Some(-7));
    }

    #[test]
    fn ite_evaluation() {
        let (t, x, _) = two_var_trace();
        let step = t.steps().next().unwrap();
        let cond = Predicate::ge(IntTerm::var(VarRef::current(x)), IntTerm::constant(3));
        let term = IntTerm::ite(cond, IntTerm::constant(1), IntTerm::constant(0));
        assert_eq!(term.eval(&step), Some(1));
    }

    #[test]
    fn overflow_yields_none() {
        let (t, x, _) = two_var_trace();
        let step = t.steps().next().unwrap();
        let term = IntTerm::constant(i64::MAX) + IntTerm::var(VarRef::current(x));
        assert_eq!(term.eval(&step), None);
    }

    #[test]
    fn kind_mismatch_yields_none() {
        let sig = Signature::builder().event("op").build();
        let mut t = Trace::new(sig.clone());
        t.push_named_row(vec![tracelearn_trace::RowEntry::Event("a")])
            .unwrap();
        t.push_named_row(vec![tracelearn_trace::RowEntry::Event("b")])
            .unwrap();
        let step = t.steps().next().unwrap();
        let term = IntTerm::var(VarRef::current(sig.var("op").unwrap()));
        assert_eq!(term.eval(&step), None);
    }

    #[test]
    fn size_counts_nodes() {
        let (_, x, _) = two_var_trace();
        assert_eq!(IntTerm::constant(3).size(), 1);
        let sum = IntTerm::var(VarRef::current(x)) + IntTerm::constant(1);
        assert_eq!(sum.size(), 3);
    }

    #[test]
    fn var_refs_and_primed_detection() {
        let (_, x, y) = two_var_trace();
        let term = IntTerm::var(VarRef::next(x)) - IntTerm::var(VarRef::current(y));
        let mut refs = Vec::new();
        term.var_refs(&mut refs);
        assert_eq!(refs.len(), 2);
        assert!(term.mentions_primed());
        assert!(!IntTerm::var(VarRef::current(x)).mentions_primed());
    }
}
