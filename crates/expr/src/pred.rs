//! Boolean predicates over step pairs.

use crate::term::{IntTerm, VarRef};
use serde::{Deserialize, Serialize};
use tracelearn_trace::{StepPair, SymbolId, Value};

/// Comparison operators for integer atoms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// Applies the comparison to two integers.
    pub fn apply(self, lhs: i64, rhs: i64) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }

    /// The textual symbol of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "≠",
            CmpOp::Lt => "<",
            CmpOp::Le => "≤",
            CmpOp::Gt => ">",
            CmpOp::Ge => "≥",
        }
    }

    /// All comparison operators, in a canonical order.
    pub fn all() -> [CmpOp; 6] {
        [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ]
    }
}

/// A boolean predicate over a pair of consecutive observations.
///
/// Predicates are the transition labels of the learned automaton. Typical
/// examples from the paper are `x' = x + 1`, `op' = op + ip`,
/// `(op = 5 ∧ ip = 1) ∨ (op = −5 ∧ ip = −1)` and event labels such as
/// `op = read`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Predicate {
    /// Always true.
    True,
    /// Always false.
    False,
    /// Comparison of two integer terms.
    Cmp {
        /// The comparison operator.
        op: CmpOp,
        /// Left-hand side term.
        lhs: IntTerm,
        /// Right-hand side term.
        rhs: IntTerm,
    },
    /// An event-valued variable equals a specific interned event.
    EventIs {
        /// The (possibly primed) event variable.
        var: VarRef,
        /// The expected event symbol.
        symbol: SymbolId,
    },
    /// A boolean variable holds (or, with `negated`, does not hold).
    BoolVar {
        /// The (possibly primed) boolean variable.
        var: VarRef,
        /// Whether the atom is negated.
        negated: bool,
    },
    /// Negation.
    Not(Box<Predicate>),
    /// Conjunction of all children.
    And(Vec<Predicate>),
    /// Disjunction of all children.
    Or(Vec<Predicate>),
}

impl Predicate {
    /// The predicate `lhs = rhs`.
    pub fn eq(lhs: IntTerm, rhs: IntTerm) -> Self {
        Predicate::Cmp {
            op: CmpOp::Eq,
            lhs,
            rhs,
        }
    }

    /// The predicate `lhs ≥ rhs`.
    pub fn ge(lhs: IntTerm, rhs: IntTerm) -> Self {
        Predicate::Cmp {
            op: CmpOp::Ge,
            lhs,
            rhs,
        }
    }

    /// The predicate `lhs ≤ rhs`.
    pub fn le(lhs: IntTerm, rhs: IntTerm) -> Self {
        Predicate::Cmp {
            op: CmpOp::Le,
            lhs,
            rhs,
        }
    }

    /// A comparison predicate with an arbitrary operator.
    pub fn cmp(op: CmpOp, lhs: IntTerm, rhs: IntTerm) -> Self {
        Predicate::Cmp { op, lhs, rhs }
    }

    /// The update predicate `var' = term`, the shape produced by next-state
    /// function synthesis.
    pub fn update(var: tracelearn_trace::VarId, term: IntTerm) -> Self {
        Predicate::eq(IntTerm::var(VarRef::next(var)), term)
    }

    /// The predicate "event variable `var` is `symbol`".
    pub fn event_is(var: VarRef, symbol: SymbolId) -> Self {
        Predicate::EventIs { var, symbol }
    }

    /// Conjunction, flattening trivial cases.
    pub fn and(mut parts: Vec<Predicate>) -> Self {
        parts.retain(|p| *p != Predicate::True);
        if parts.contains(&Predicate::False) {
            return Predicate::False;
        }
        match parts.len() {
            0 => Predicate::True,
            1 => parts.pop().expect("length checked"),
            _ => Predicate::And(parts),
        }
    }

    /// Disjunction, flattening trivial cases.
    pub fn or(mut parts: Vec<Predicate>) -> Self {
        parts.retain(|p| *p != Predicate::False);
        if parts.contains(&Predicate::True) {
            return Predicate::True;
        }
        match parts.len() {
            0 => Predicate::False,
            1 => parts.pop().expect("length checked"),
            _ => Predicate::Or(parts),
        }
    }

    /// Negation with double-negation elimination.
    pub fn negate(self) -> Self {
        match self {
            Predicate::True => Predicate::False,
            Predicate::False => Predicate::True,
            Predicate::Not(inner) => *inner,
            other => Predicate::Not(Box::new(other)),
        }
    }

    /// Evaluates the predicate against a step pair.
    ///
    /// Returns `None` when a referenced variable has the wrong kind for its
    /// atom (e.g. comparing an event variable arithmetically) or when nested
    /// term evaluation fails.
    pub fn eval(&self, step: &StepPair<'_>) -> Option<bool> {
        match self {
            Predicate::True => Some(true),
            Predicate::False => Some(false),
            Predicate::Cmp { op, lhs, rhs } => Some(op.apply(lhs.eval(step)?, rhs.eval(step)?)),
            Predicate::EventIs { var, symbol } => match var.value(step) {
                Value::Sym(s) => Some(s == *symbol),
                _ => None,
            },
            Predicate::BoolVar { var, negated } => {
                let b = var.value(step).as_bool()?;
                Some(b != *negated)
            }
            Predicate::Not(inner) => inner.eval(step).map(|b| !b),
            Predicate::And(parts) => {
                let mut result = true;
                for p in parts {
                    result &= p.eval(step)?;
                }
                Some(result)
            }
            Predicate::Or(parts) => {
                let mut result = false;
                for p in parts {
                    result |= p.eval(step)?;
                }
                Some(result)
            }
        }
    }

    /// Evaluates the predicate, treating evaluation failure as `false`.
    ///
    /// This is the semantics used when checking whether a trace step
    /// satisfies a transition label: a label that does not even type-check
    /// against the step cannot describe it.
    pub fn holds(&self, step: &StepPair<'_>) -> bool {
        self.eval(step).unwrap_or(false)
    }

    /// Syntactic size (number of AST nodes).
    pub fn size(&self) -> usize {
        match self {
            Predicate::True | Predicate::False => 1,
            Predicate::Cmp { lhs, rhs, .. } => 1 + lhs.size() + rhs.size(),
            Predicate::EventIs { .. } | Predicate::BoolVar { .. } => 1,
            Predicate::Not(inner) => 1 + inner.size(),
            Predicate::And(parts) | Predicate::Or(parts) => {
                1 + parts.iter().map(Predicate::size).sum::<usize>()
            }
        }
    }

    /// Collects every variable reference appearing in the predicate.
    pub fn var_refs(&self, out: &mut Vec<VarRef>) {
        match self {
            Predicate::True | Predicate::False => {}
            Predicate::Cmp { lhs, rhs, .. } => {
                lhs.var_refs(out);
                rhs.var_refs(out);
            }
            Predicate::EventIs { var, .. } | Predicate::BoolVar { var, .. } => out.push(*var),
            Predicate::Not(inner) => inner.var_refs(out),
            Predicate::And(parts) | Predicate::Or(parts) => {
                for p in parts {
                    p.var_refs(out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracelearn_trace::{RowEntry, Signature, Trace, VarId};

    fn step_trace() -> (Trace, VarId, VarId) {
        let sig = Signature::builder().int("op").int("ip").build();
        let op = sig.var("op").unwrap();
        let ip = sig.var("ip").unwrap();
        let mut t = Trace::new(sig);
        t.push_row([Value::Int(4), Value::Int(1)]).unwrap();
        t.push_row([Value::Int(5), Value::Int(1)]).unwrap();
        (t, op, ip)
    }

    #[test]
    fn cmp_ops_apply() {
        assert!(CmpOp::Eq.apply(2, 2));
        assert!(CmpOp::Ne.apply(2, 3));
        assert!(CmpOp::Lt.apply(2, 3));
        assert!(CmpOp::Le.apply(3, 3));
        assert!(CmpOp::Gt.apply(4, 3));
        assert!(CmpOp::Ge.apply(4, 4));
        assert_eq!(CmpOp::all().len(), 6);
    }

    #[test]
    fn integrator_update_predicate() {
        let (t, op, ip) = step_trace();
        let step = t.steps().next().unwrap();
        // op' = op + ip
        let pred = Predicate::update(
            op,
            IntTerm::var(VarRef::current(op)) + IntTerm::var(VarRef::current(ip)),
        );
        assert_eq!(pred.eval(&step), Some(true));
        // op' = op
        let stutter = Predicate::update(op, IntTerm::var(VarRef::current(op)));
        assert_eq!(stutter.eval(&step), Some(false));
    }

    #[test]
    fn guard_predicates() {
        let (t, op, _) = step_trace();
        let step = t.steps().next().unwrap();
        let ge = Predicate::ge(IntTerm::var(VarRef::current(op)), IntTerm::constant(4));
        let le = Predicate::le(IntTerm::var(VarRef::current(op)), IntTerm::constant(3));
        assert_eq!(ge.eval(&step), Some(true));
        assert_eq!(le.eval(&step), Some(false));
    }

    #[test]
    fn event_atoms() {
        let sig = Signature::builder().event("ev").build();
        let ev = sig.var("ev").unwrap();
        let mut t = Trace::new(sig);
        t.push_named_row(vec![RowEntry::Event("read")]).unwrap();
        t.push_named_row(vec![RowEntry::Event("write")]).unwrap();
        let read = t.symbols().lookup("read").unwrap();
        let write = t.symbols().lookup("write").unwrap();
        let step = t.steps().next().unwrap();
        assert_eq!(
            Predicate::event_is(VarRef::current(ev), read).eval(&step),
            Some(true)
        );
        assert_eq!(
            Predicate::event_is(VarRef::next(ev), write).eval(&step),
            Some(true)
        );
        assert_eq!(
            Predicate::event_is(VarRef::current(ev), write).eval(&step),
            Some(false)
        );
    }

    #[test]
    fn bool_atoms() {
        let sig = Signature::builder().boolean("b").build();
        let b = sig.var("b").unwrap();
        let mut t = Trace::new(sig);
        t.push_row([Value::Bool(true)]).unwrap();
        t.push_row([Value::Bool(false)]).unwrap();
        let step = t.steps().next().unwrap();
        assert_eq!(
            Predicate::BoolVar {
                var: VarRef::current(b),
                negated: false
            }
            .eval(&step),
            Some(true)
        );
        assert_eq!(
            Predicate::BoolVar {
                var: VarRef::next(b),
                negated: true
            }
            .eval(&step),
            Some(true)
        );
    }

    #[test]
    fn connectives_and_smart_constructors() {
        let (t, op, ip) = step_trace();
        let step = t.steps().next().unwrap();
        let a = Predicate::eq(IntTerm::var(VarRef::current(op)), IntTerm::constant(4));
        let b = Predicate::eq(IntTerm::var(VarRef::current(ip)), IntTerm::constant(1));
        let both = Predicate::and(vec![a.clone(), b.clone()]);
        assert_eq!(both.eval(&step), Some(true));
        let either = Predicate::or(vec![a.clone().negate(), b]);
        assert_eq!(either.eval(&step), Some(true));
        // Simplifications.
        assert_eq!(Predicate::and(vec![]), Predicate::True);
        assert_eq!(Predicate::or(vec![]), Predicate::False);
        assert_eq!(
            Predicate::and(vec![Predicate::False, a.clone()]),
            Predicate::False
        );
        assert_eq!(
            Predicate::or(vec![Predicate::True, a.clone()]),
            Predicate::True
        );
        assert_eq!(Predicate::and(vec![a.clone()]), a.clone());
        assert_eq!(a.clone().negate().negate(), a);
    }

    #[test]
    fn eval_failure_on_kind_mismatch() {
        let sig = Signature::builder().event("ev").build();
        let ev = sig.var("ev").unwrap();
        let mut t = Trace::new(sig);
        t.push_named_row(vec![RowEntry::Event("a")]).unwrap();
        t.push_named_row(vec![RowEntry::Event("b")]).unwrap();
        let step = t.steps().next().unwrap();
        let pred = Predicate::eq(IntTerm::var(VarRef::current(ev)), IntTerm::constant(0));
        assert_eq!(pred.eval(&step), None);
        assert!(!pred.holds(&step));
    }

    #[test]
    fn size_and_var_refs() {
        let (_, op, ip) = step_trace();
        let pred = Predicate::and(vec![
            Predicate::eq(IntTerm::var(VarRef::current(op)), IntTerm::constant(5)),
            Predicate::eq(IntTerm::var(VarRef::current(ip)), IntTerm::constant(1)),
        ]);
        assert_eq!(pred.size(), 7);
        let mut refs = Vec::new();
        pred.var_refs(&mut refs);
        assert_eq!(refs.len(), 2);
    }

    #[test]
    fn constants_eval() {
        let (t, _, _) = step_trace();
        let step = t.steps().next().unwrap();
        assert_eq!(Predicate::True.eval(&step), Some(true));
        assert_eq!(Predicate::False.eval(&step), Some(false));
    }
}
