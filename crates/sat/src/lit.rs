//! Boolean variables and literals.

use std::fmt;
use std::ops::Not;

/// A propositional variable, identified by a zero-based index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(u32);

impl Var {
    /// Creates a variable from its zero-based index.
    pub fn new(index: u32) -> Self {
        Var(index)
    }

    /// The zero-based index of the variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0 + 1)
    }
}

/// A literal: a variable or its negation.
///
/// Internally encoded as `2 * var + sign` so that a literal and its negation
/// differ only in the lowest bit, which keeps watch lists compact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `var`.
    pub fn positive(var: Var) -> Self {
        Lit(var.0 << 1)
    }

    /// The negative literal of `var`.
    pub fn negative(var: Var) -> Self {
        Lit((var.0 << 1) | 1)
    }

    /// Builds a literal from a variable and a polarity.
    pub fn new(var: Var, positive: bool) -> Self {
        if positive {
            Lit::positive(var)
        } else {
            Lit::negative(var)
        }
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether the literal is positive.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Dense index usable for watch lists (`2 * var + sign`).
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a literal from its dense code.
    pub fn from_code(code: usize) -> Self {
        Lit(u32::try_from(code).expect("literal code fits in u32"))
    }
}

impl Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "{}", self.var())
        } else {
            write!(f, "¬{}", self.var())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding_round_trips() {
        let v = Var::new(7);
        let pos = Lit::positive(v);
        let neg = Lit::negative(v);
        assert_eq!(pos.var(), v);
        assert_eq!(neg.var(), v);
        assert!(pos.is_positive());
        assert!(!neg.is_positive());
        assert_eq!(!pos, neg);
        assert_eq!(!neg, pos);
        assert_eq!(Lit::from_code(pos.code()), pos);
    }

    #[test]
    fn new_with_polarity() {
        let v = Var::new(3);
        assert_eq!(Lit::new(v, true), Lit::positive(v));
        assert_eq!(Lit::new(v, false), Lit::negative(v));
    }

    #[test]
    fn codes_are_adjacent() {
        let v = Var::new(5);
        assert_eq!(Lit::positive(v).code() + 1, Lit::negative(v).code());
        assert_eq!(Lit::positive(v).code(), 10);
    }

    #[test]
    fn display_forms() {
        let v = Var::new(0);
        assert_eq!(Lit::positive(v).to_string(), "x1");
        assert_eq!(Lit::negative(v).to_string(), "¬x1");
        assert_eq!(v.to_string(), "x1");
    }
}
