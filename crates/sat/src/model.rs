//! Satisfying assignments.

use crate::lit::{Lit, Var};

/// A satisfying assignment returned by the solver.
///
/// # Example
///
/// ```
/// use tracelearn_sat::{Cnf, Lit, SatResult, Solver};
///
/// let mut cnf = Cnf::new();
/// let v = cnf.new_var();
/// cnf.add_clause([Lit::positive(v)]);
/// if let SatResult::Sat(model) = Solver::from_cnf(&cnf).solve() {
///     assert!(model.value(v));
///     assert!(model.lit_value(Lit::positive(v)));
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Model {
    values: Vec<bool>,
}

impl Model {
    /// Creates a model from per-variable values (indexed by variable index).
    pub fn new(values: Vec<bool>) -> Self {
        Model { values }
    }

    /// The truth value assigned to `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` was not part of the solved formula.
    pub fn value(&self, var: Var) -> bool {
        self.values[var.index()]
    }

    /// The truth value of a literal under this model.
    pub fn lit_value(&self, lit: Lit) -> bool {
        self.value(lit.var()) == lit.is_positive()
    }

    /// Number of assigned variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the model assigns no variables.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Checks the model against a set of clauses, returning `true` when every
    /// clause contains at least one satisfied literal.
    pub fn satisfies(&self, clauses: &[Vec<Lit>]) -> bool {
        clauses
            .iter()
            .all(|clause| clause.iter().any(|&lit| self.lit_value(lit)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_lookup() {
        let model = Model::new(vec![true, false, true]);
        assert!(model.value(Var::new(0)));
        assert!(!model.value(Var::new(1)));
        assert!(model.lit_value(Lit::negative(Var::new(1))));
        assert!(!model.lit_value(Lit::negative(Var::new(2))));
        assert_eq!(model.len(), 3);
        assert!(!model.is_empty());
    }

    #[test]
    fn satisfies_checks_all_clauses() {
        let model = Model::new(vec![true, false]);
        let a = Var::new(0);
        let b = Var::new(1);
        let clauses = vec![
            vec![Lit::positive(a), Lit::positive(b)],
            vec![Lit::negative(b)],
        ];
        assert!(model.satisfies(&clauses));
        let failing = vec![vec![Lit::positive(b)]];
        assert!(!model.satisfies(&failing));
    }
}
