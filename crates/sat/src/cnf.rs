//! CNF formula construction.

use crate::lit::{Lit, Var};

/// A propositional formula in conjunctive normal form, under construction.
///
/// `Cnf` is the interface used by the automaton encoder: allocate variables,
/// add clauses, and use the cardinality helpers for one-hot state encodings.
///
/// # Example
///
/// ```
/// use tracelearn_sat::{Cnf, Lit, SatResult, Solver};
///
/// let mut cnf = Cnf::new();
/// let bits: Vec<_> = (0..4).map(|_| cnf.new_var()).collect();
/// cnf.exactly_one(&bits.iter().map(|&v| Lit::positive(v)).collect::<Vec<_>>());
/// let result = Solver::from_cnf(&cnf).solve();
/// assert!(matches!(result, SatResult::Sat(_)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Cnf {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Creates an empty formula with no variables.
    pub fn new() -> Self {
        Cnf::default()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let var = Var::new(u32::try_from(self.num_vars).expect("variable count fits in u32"));
        self.num_vars += 1;
        var
    }

    /// Allocates `n` fresh variables.
    pub fn new_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses added so far.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// The clauses added so far.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Adds a clause (a disjunction of literals).
    ///
    /// An empty clause makes the formula trivially unsatisfiable.
    ///
    /// # Panics
    ///
    /// Panics if a literal refers to a variable that has not been allocated.
    pub fn add_clause<I>(&mut self, lits: I)
    where
        I: IntoIterator<Item = Lit>,
    {
        let clause: Vec<Lit> = lits.into_iter().collect();
        for lit in &clause {
            assert!(
                lit.var().index() < self.num_vars,
                "literal {lit} refers to an unallocated variable"
            );
        }
        self.clauses.push(clause);
    }

    /// Adds the implication `premise → conclusion` as a clause.
    pub fn implies(&mut self, premise: Lit, conclusion: Lit) {
        self.add_clause([!premise, conclusion]);
    }

    /// Adds `premise₁ ∧ premise₂ → conclusion`.
    pub fn implies2(&mut self, premise1: Lit, premise2: Lit, conclusion: Lit) {
        self.add_clause([!premise1, !premise2, conclusion]);
    }

    /// Adds the bi-implication `a ↔ b`.
    pub fn iff(&mut self, a: Lit, b: Lit) {
        self.implies(a, b);
        self.implies(b, a);
    }

    /// Requires at least one of `lits` to hold.
    pub fn at_least_one(&mut self, lits: &[Lit]) {
        self.add_clause(lits.iter().copied());
    }

    /// Requires at most one of `lits` to hold (pairwise encoding).
    ///
    /// Pairwise encoding is quadratic in the number of literals; the one-hot
    /// groups in the automaton encoding are small (the number of automaton
    /// states), so this is the right trade-off versus auxiliary variables.
    pub fn at_most_one(&mut self, lits: &[Lit]) {
        for i in 0..lits.len() {
            for j in (i + 1)..lits.len() {
                self.add_clause([!lits[i], !lits[j]]);
            }
        }
    }

    /// Requires exactly one of `lits` to hold.
    pub fn exactly_one(&mut self, lits: &[Lit]) {
        self.at_least_one(lits);
        self.at_most_one(lits);
    }

    /// Forbids the conjunction of all `lits` (adds the clause of negations).
    pub fn forbid_all(&mut self, lits: &[Lit]) {
        self.add_clause(lits.iter().map(|&l| !l));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{SatResult, Solver};

    fn solve(cnf: &Cnf) -> SatResult {
        Solver::from_cnf(cnf).solve()
    }

    #[test]
    fn allocation_and_counts() {
        let mut cnf = Cnf::new();
        let vars = cnf.new_vars(3);
        assert_eq!(cnf.num_vars(), 3);
        cnf.add_clause([Lit::positive(vars[0])]);
        assert_eq!(cnf.num_clauses(), 1);
        assert_eq!(cnf.clauses().len(), 1);
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn unallocated_variable_panics() {
        let mut cnf = Cnf::new();
        cnf.add_clause([Lit::positive(Var::new(5))]);
    }

    #[test]
    fn exactly_one_is_satisfiable_with_exactly_one_true() {
        let mut cnf = Cnf::new();
        let vars = cnf.new_vars(5);
        let lits: Vec<Lit> = vars.iter().map(|&v| Lit::positive(v)).collect();
        cnf.exactly_one(&lits);
        match solve(&cnf) {
            SatResult::Sat(model) => {
                let count = vars.iter().filter(|&&v| model.value(v)).count();
                assert_eq!(count, 1);
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn at_most_one_conflicts_with_two_forced() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.at_most_one(&[Lit::positive(a), Lit::positive(b)]);
        cnf.add_clause([Lit::positive(a)]);
        cnf.add_clause([Lit::positive(b)]);
        assert!(matches!(solve(&cnf), SatResult::Unsat));
    }

    #[test]
    fn implications_chain() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        let c = cnf.new_var();
        cnf.implies(Lit::positive(a), Lit::positive(b));
        cnf.implies(Lit::positive(b), Lit::positive(c));
        cnf.add_clause([Lit::positive(a)]);
        match solve(&cnf) {
            SatResult::Sat(model) => {
                assert!(model.value(a) && model.value(b) && model.value(c));
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn iff_links_values() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.iff(Lit::positive(a), Lit::negative(b));
        cnf.add_clause([Lit::positive(a)]);
        match solve(&cnf) {
            SatResult::Sat(model) => assert!(model.value(a) && !model.value(b)),
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn implies2_and_forbid_all() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        let c = cnf.new_var();
        cnf.implies2(Lit::positive(a), Lit::positive(b), Lit::positive(c));
        cnf.forbid_all(&[Lit::positive(a), Lit::positive(b), Lit::positive(c)]);
        cnf.add_clause([Lit::positive(a)]);
        match solve(&cnf) {
            SatResult::Sat(model) => {
                // a is true, so b must be false (otherwise c both forced and forbidden).
                assert!(model.value(a));
                assert!(!model.value(b));
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut cnf = Cnf::new();
        let _ = cnf.new_var();
        cnf.add_clause([]);
        assert!(matches!(solve(&cnf), SatResult::Unsat));
    }
}
