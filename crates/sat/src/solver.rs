//! A conflict-driven clause-learning (CDCL) SAT solver.
//!
//! The implementation follows the classic MiniSat architecture:
//! two-watched-literal unit propagation, first-UIP conflict analysis with
//! clause learning and non-chronological backjumping, activity-ordered
//! (VSIDS) decision making with phase saving, and Luby-sequence restarts.
//!
//! The solver is *incremental*: clauses and variables may be added between
//! solve calls ([`Solver::add_clause`], [`Solver::new_var`]), learnt clauses
//! are kept across calls (subject to activity-based database reduction), and
//! [`Solver::solve_with_assumptions`] decides the formula under a set of
//! temporary unit assumptions without permanently binding them. Resource
//! [`Limits`] are accounted *per call*: each solve call gets its own fresh
//! conflict and propagation budget, regardless of how much work earlier calls
//! on the same solver performed.

use crate::cnf::Cnf;
use crate::lit::{Lit, Var};
use crate::model::Model;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Resource limits for a single [`Solver::solve_with_limits`] call.
///
/// Budgets are measured against the work performed by *that call alone*: a
/// reused solver does not inherit the consumption of earlier calls.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Limits {
    /// Maximum number of conflicts before giving up with
    /// [`SatResult::Unknown`]. `None` means unlimited.
    pub max_conflicts: Option<u64>,
    /// Maximum number of unit propagations before giving up. `None` means
    /// unlimited. The budget is checked *inside* the propagation loop (every
    /// 1024 propagated literals), so a single runaway propagation pass cannot
    /// overshoot it by more than that granularity.
    pub max_propagations: Option<u64>,
}

impl Limits {
    /// No limits: the solver runs to completion.
    pub fn unlimited() -> Self {
        Limits::default()
    }

    /// Limits the number of conflicts.
    pub fn conflicts(max_conflicts: u64) -> Self {
        Limits {
            max_conflicts: Some(max_conflicts),
            max_propagations: None,
        }
    }

    /// Limits the number of unit propagations.
    pub fn propagations(max_propagations: u64) -> Self {
        Limits {
            max_conflicts: None,
            max_propagations: Some(max_propagations),
        }
    }
}

/// Outcome of a solve call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatResult {
    /// The formula is satisfiable; a witnessing assignment is attached.
    Sat(Model),
    /// The formula is unsatisfiable. For
    /// [`Solver::solve_with_assumptions`] this means unsatisfiable *under
    /// the assumptions*; [`Solver::failed_assumptions`] names the culprits.
    Unsat,
    /// The resource budget was exhausted before an answer was found.
    Unknown,
}

impl SatResult {
    /// Returns the model when satisfiable.
    pub fn model(self) -> Option<Model> {
        match self {
            SatResult::Sat(model) => Some(model),
            _ => None,
        }
    }

    /// Whether the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }

    /// Whether the result is `Unsat`.
    pub fn is_unsat(&self) -> bool {
        matches!(self, SatResult::Unsat)
    }
}

/// Counters describing the work performed by the solver.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of learnt clauses added.
    pub learnt_clauses: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of solve calls issued against this solver.
    pub solve_calls: u64,
    /// Number of learnt-clause database reductions performed.
    pub db_reductions: u64,
    /// Number of learnt clauses evicted by database reductions.
    pub removed_learnts: u64,
}

impl SolverStats {
    /// Field-wise difference `self - earlier`, used for per-call accounting.
    fn since(&self, earlier: &SolverStats) -> SolverStats {
        SolverStats {
            decisions: self.decisions - earlier.decisions,
            conflicts: self.conflicts - earlier.conflicts,
            propagations: self.propagations - earlier.propagations,
            learnt_clauses: self.learnt_clauses - earlier.learnt_clauses,
            restarts: self.restarts - earlier.restarts,
            solve_calls: self.solve_calls - earlier.solve_calls,
            db_reductions: self.db_reductions - earlier.db_reductions,
            removed_learnts: self.removed_learnts - earlier.removed_learnts,
        }
    }
}

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    activity: f64,
}

#[derive(Debug, Clone, Copy)]
struct Watch {
    clause: usize,
    blocker: Lit,
}

/// The CDCL solver. Construct it from a [`Cnf`] and call [`Solver::solve`].
#[derive(Debug, Clone)]
pub struct Solver {
    num_vars: usize,
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watch>>,
    assign: Vec<Option<bool>>,
    level: Vec<u32>,
    reason: Vec<Option<usize>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    phase: Vec<bool>,
    heap: VarHeap,
    seen: Vec<bool>,
    ok: bool,
    stats: SolverStats,
    last_call: SolverStats,
    /// Learnt clauses currently attached to the database.
    live_learnts: usize,
    /// Reduce the learnt database when `live_learnts` reaches this; `0` means
    /// "pick automatically on the first solve call".
    learnt_limit: usize,
    /// Absolute propagation count at which the current call must give up.
    prop_limit: Option<u64>,
    prop_budget_hit: bool,
    failed: Vec<Lit>,
    /// Cooperative interrupt: when the flag is raised by another thread the
    /// current solve call abandons its work with [`SatResult::Unknown`].
    interrupt: Option<Arc<AtomicBool>>,
}

impl Solver {
    /// Creates a solver over `num_vars` variables with no clauses.
    pub fn new(num_vars: usize) -> Self {
        let mut heap = VarHeap::new(num_vars);
        let initial_activity = vec![0.0; num_vars];
        for v in 0..num_vars {
            heap.insert(v, &initial_activity);
        }
        Solver {
            num_vars,
            clauses: Vec::new(),
            watches: vec![Vec::new(); num_vars * 2],
            assign: vec![None; num_vars],
            level: vec![0; num_vars],
            reason: vec![None; num_vars],
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: vec![0.0; num_vars],
            var_inc: 1.0,
            cla_inc: 1.0,
            phase: vec![false; num_vars],
            heap,
            seen: vec![false; num_vars],
            ok: true,
            stats: SolverStats::default(),
            last_call: SolverStats::default(),
            live_learnts: 0,
            learnt_limit: 0,
            prop_limit: None,
            prop_budget_hit: false,
            failed: Vec::new(),
            interrupt: None,
        }
    }

    /// Creates a solver and loads every clause of `cnf`.
    pub fn from_cnf(cnf: &Cnf) -> Self {
        let mut solver = Solver::new(cnf.num_vars());
        for clause in cnf.clauses() {
            solver.add_clause(clause.iter().copied());
        }
        solver
    }

    /// Statistics accumulated over the solver's whole lifetime.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Statistics of the most recent solve call only (per-call counters).
    pub fn last_call_stats(&self) -> SolverStats {
        self.last_call
    }

    /// Number of variables known to the solver.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of learnt clauses currently in the database — the clauses a
    /// subsequent solve call on this solver will reuse.
    pub fn num_learnts(&self) -> usize {
        self.live_learnts
    }

    /// Allocates a fresh variable and returns it. The variable participates
    /// in decisions and may appear in clauses added afterwards.
    pub fn new_var(&mut self) -> Var {
        let v = self.num_vars;
        self.num_vars += 1;
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.assign.push(None);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.heap.grow();
        self.heap.insert(v, &self.activity);
        Var::new(u32::try_from(v).expect("variable count fits in u32"))
    }

    /// Sets the learnt-database size at which the next reduction triggers.
    /// The limit then grows geometrically (×1.5) after every reduction.
    pub fn set_learnt_limit(&mut self, limit: usize) {
        self.learnt_limit = limit.max(1);
    }

    /// Installs a cooperative interrupt flag, shared with other threads.
    ///
    /// The flag is polled inside [`Solver::propagate`] (with the same
    /// 1024-propagation granularity as the propagation budget) and once per
    /// conflict-loop iteration, so raising it from another thread makes an
    /// in-flight solve call give up with [`SatResult::Unknown`] promptly —
    /// this is what lets the learner's speculative portfolio cancel workers
    /// whose state count has become moot. The solver itself never clears the
    /// flag; an interrupted solver remains usable and answers correctly once
    /// the flag is lowered (or [cleared](Solver::clear_interrupt)).
    pub fn set_interrupt(&mut self, flag: Arc<AtomicBool>) {
        self.interrupt = Some(flag);
    }

    /// Removes an installed interrupt flag.
    pub fn clear_interrupt(&mut self) {
        self.interrupt = None;
    }

    /// Whether an installed interrupt flag is currently raised.
    pub fn is_interrupted(&self) -> bool {
        self.interrupt
            .as_ref()
            .is_some_and(|flag| flag.load(Ordering::Relaxed))
    }

    /// The subset of the assumptions passed to the last
    /// [`Solver::solve_with_assumptions`] call that was used to derive its
    /// `Unsat` answer (the "final conflict clause" in assumption terms).
    /// Empty when the formula is unsatisfiable regardless of assumptions, or
    /// when the last call did not end in assumption failure.
    pub fn failed_assumptions(&self) -> &[Lit] {
        &self.failed
    }

    fn lit_value(&self, lit: Lit) -> Option<bool> {
        self.assign[lit.var().index()].map(|v| v == lit.is_positive())
    }

    fn current_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Adds a clause. Clauses may be added between solve calls; solving
    /// always restarts from decision level zero, so late additions are
    /// handled correctly.
    ///
    /// # Panics
    ///
    /// Panics if a literal refers to a variable outside the solver's range.
    pub fn add_clause<I>(&mut self, lits: I)
    where
        I: IntoIterator<Item = Lit>,
    {
        if !self.ok {
            return;
        }
        // Reset to decision level 0 so value checks below are top-level facts.
        self.backjump(0);
        let mut clause: Vec<Lit> = lits.into_iter().collect();
        for lit in &clause {
            assert!(lit.var().index() < self.num_vars, "literal out of range");
        }
        clause.sort();
        clause.dedup();
        // Tautologies are trivially satisfied.
        for i in 1..clause.len() {
            if clause[i] == !clause[i - 1] {
                return;
            }
        }
        // Remove literals already false at top level; drop satisfied clauses.
        clause.retain(|&l| self.lit_value(l) != Some(false));
        if clause.iter().any(|&l| self.lit_value(l) == Some(true)) {
            return;
        }
        match clause.len() {
            0 => self.ok = false,
            1 => {
                if !self.enqueue(clause[0], None) || self.propagate().is_some() {
                    self.ok = false;
                }
            }
            _ => {
                self.attach(clause, false);
            }
        }
    }

    fn attach(&mut self, lits: Vec<Lit>, learnt: bool) -> usize {
        let idx = self.clauses.len();
        self.watches[(!lits[0]).code()].push(Watch {
            clause: idx,
            blocker: lits[1],
        });
        self.watches[(!lits[1]).code()].push(Watch {
            clause: idx,
            blocker: lits[0],
        });
        if learnt {
            self.live_learnts += 1;
        }
        self.clauses.push(Clause {
            lits,
            learnt,
            activity: 0.0,
        });
        idx
    }

    fn enqueue(&mut self, lit: Lit, reason: Option<usize>) -> bool {
        match self.lit_value(lit) {
            Some(true) => true,
            Some(false) => false,
            None => {
                let v = lit.var().index();
                self.assign[v] = Some(lit.is_positive());
                self.level[v] = self.current_level();
                self.reason[v] = reason;
                self.trail.push(lit);
                true
            }
        }
    }

    fn propagate(&mut self) -> Option<usize> {
        while self.qhead < self.trail.len() {
            // Enforce the propagation budget and poll the interrupt flag
            // *inside* the loop (with 1024-step granularity) so a single long
            // propagation pass cannot blow past either: the solve loop only
            // regains control between conflicts.
            if self.stats.propagations & 1023 == 0 {
                if let Some(limit) = self.prop_limit {
                    if self.stats.propagations >= limit {
                        self.prop_budget_hit = true;
                        return None;
                    }
                }
                if self.is_interrupted() {
                    self.prop_budget_hit = true;
                    return None;
                }
            }
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;

            let mut watch_list = std::mem::take(&mut self.watches[p.code()]);
            let mut kept = Vec::with_capacity(watch_list.len());
            let mut conflict = None;
            let mut iter = watch_list.drain(..);
            for watch in iter.by_ref() {
                if self.lit_value(watch.blocker) == Some(true) {
                    kept.push(watch);
                    continue;
                }
                let clause_idx = watch.clause;
                let false_lit = !p;
                // Ensure the falsified literal is at position 1.
                {
                    let clause = &mut self.clauses[clause_idx];
                    if clause.lits[0] == false_lit {
                        clause.lits.swap(0, 1);
                    }
                }
                let first = self.clauses[clause_idx].lits[0];
                if first != watch.blocker && self.lit_value(first) == Some(true) {
                    kept.push(Watch {
                        clause: clause_idx,
                        blocker: first,
                    });
                    continue;
                }
                // Look for a new literal to watch.
                let mut moved = false;
                {
                    let len = self.clauses[clause_idx].lits.len();
                    for k in 2..len {
                        let candidate = self.clauses[clause_idx].lits[k];
                        if self.lit_value(candidate) != Some(false) {
                            self.clauses[clause_idx].lits.swap(1, k);
                            self.watches[(!candidate).code()].push(Watch {
                                clause: clause_idx,
                                blocker: first,
                            });
                            moved = true;
                            break;
                        }
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit or conflicting under the current assignment.
                kept.push(Watch {
                    clause: clause_idx,
                    blocker: first,
                });
                if self.lit_value(first) == Some(false) {
                    conflict = Some(clause_idx);
                    self.qhead = self.trail.len();
                    break;
                }
                let enqueued = self.enqueue(first, Some(clause_idx));
                debug_assert!(enqueued, "unit literal must be assignable");
            }
            kept.extend(iter);
            debug_assert!(self.watches[p.code()].is_empty() || conflict.is_none());
            // New watches for other literals may have been appended while we
            // iterated; keep them.
            let appended = std::mem::take(&mut self.watches[p.code()]);
            kept.extend(appended);
            self.watches[p.code()] = kept;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    fn bump_var(&mut self, var: usize) {
        self.activity[var] += self.var_inc;
        if self.activity[var] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.update(var, &self.activity);
    }

    fn bump_clause(&mut self, idx: usize) {
        if !self.clauses[idx].learnt {
            return;
        }
        self.clauses[idx].activity += self.cla_inc;
        if self.clauses[idx].activity > 1e20 {
            for clause in &mut self.clauses {
                if clause.learnt {
                    clause.activity *= 1e-20;
                }
            }
            self.cla_inc *= 1e-20;
        }
    }

    fn analyze(&mut self, mut conflict: usize) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::positive(Var::new(0))]; // placeholder for the asserting literal
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let current = self.current_level();

        loop {
            self.bump_clause(conflict);
            let clause_lits = self.clauses[conflict].lits.clone();
            let skip = usize::from(p.is_some());
            for &q in clause_lits.iter().skip(skip) {
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var(v);
                    if self.level[v] >= current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next literal of the current level to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            let v = lit.var().index();
            self.seen[v] = false;
            counter -= 1;
            p = Some(lit);
            if counter == 0 {
                break;
            }
            conflict = self.reason[v].expect("non-UIP literal has a reason clause");
        }
        learnt[0] = !p.expect("analysis produced an asserting literal");

        // Clear the seen flags of the remaining literals.
        for &lit in &learnt {
            self.seen[lit.var().index()] = false;
        }

        // Compute the backtrack level: the highest level among the non-asserting literals.
        let backtrack_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_idx = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_idx].var().index()] {
                    max_idx = i;
                }
            }
            learnt.swap(1, max_idx);
            self.level[learnt[1].var().index()]
        };
        (learnt, backtrack_level)
    }

    /// Computes the subset of assumptions responsible for forcing the
    /// assumption `p` false (MiniSat's `analyzeFinal`). The returned literals
    /// are in the caller's polarity: the set cannot be jointly assumed.
    fn analyze_final(&mut self, p: Lit) -> Vec<Lit> {
        let mut out = vec![p];
        if self.current_level() == 0 {
            return out;
        }
        self.seen[p.var().index()] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let lit = self.trail[i];
            let v = lit.var().index();
            if !self.seen[v] {
                continue;
            }
            match self.reason[v] {
                // Decisions above level 0 are exactly the assumptions.
                None => out.push(lit),
                Some(clause_idx) => {
                    let lits = self.clauses[clause_idx].lits.clone();
                    for &l in lits.iter().skip(1) {
                        if self.level[l.var().index()] > 0 {
                            self.seen[l.var().index()] = true;
                        }
                    }
                }
            }
            self.seen[v] = false;
        }
        self.seen[p.var().index()] = false;
        out
    }

    fn backjump(&mut self, target_level: u32) {
        if self.current_level() <= target_level {
            return;
        }
        let keep = self.trail_lim[target_level as usize];
        while self.trail.len() > keep {
            let lit = self.trail.pop().expect("trail entry");
            let v = lit.var().index();
            self.phase[v] = lit.is_positive();
            self.assign[v] = None;
            self.reason[v] = None;
            self.heap.insert(v, &self.activity);
        }
        self.trail_lim.truncate(target_level as usize);
        self.qhead = self.trail.len();
    }

    fn decide(&mut self) -> bool {
        while let Some(v) = self.heap.pop(&self.activity) {
            if self.assign[v].is_none() {
                self.stats.decisions += 1;
                self.trail_lim.push(self.trail.len());
                let lit = Lit::new(Var::new(v as u32), self.phase[v]);
                let enqueued = self.enqueue(lit, None);
                debug_assert!(enqueued);
                return true;
            }
        }
        false
    }

    /// Halves the learnt-clause database, evicting the clauses with the
    /// lowest activity. Must be called at decision level 0. Reason clauses of
    /// top-level assignments and binary clauses are never evicted.
    fn reduce_db(&mut self) {
        debug_assert_eq!(self.current_level(), 0, "reduce_db runs at level 0");
        let mut locked = vec![false; self.clauses.len()];
        for v in 0..self.num_vars {
            if self.assign[v].is_some() {
                if let Some(clause_idx) = self.reason[v] {
                    locked[clause_idx] = true;
                }
            }
        }
        let mut candidates: Vec<usize> = (0..self.clauses.len())
            .filter(|&i| self.clauses[i].learnt && !locked[i] && self.clauses[i].lits.len() > 2)
            .collect();
        candidates.sort_by(|&a, &b| {
            self.clauses[a]
                .activity
                .partial_cmp(&self.clauses[b].activity)
                .expect("clause activities are finite")
        });
        candidates.truncate(candidates.len() / 2);
        if candidates.is_empty() {
            // Nothing evictable: raise the limit so the check is not retried
            // on every restart.
            self.learnt_limit += self.learnt_limit / 2 + 1;
            return;
        }
        let mut removed = vec![false; self.clauses.len()];
        for &i in &candidates {
            removed[i] = true;
        }

        // Compact the clause database and remap every stored index.
        let mut remap = vec![usize::MAX; self.clauses.len()];
        let mut kept = Vec::with_capacity(self.clauses.len() - candidates.len());
        for (i, clause) in std::mem::take(&mut self.clauses).into_iter().enumerate() {
            if !removed[i] {
                remap[i] = kept.len();
                kept.push(clause);
            }
        }
        self.clauses = kept;
        for clause_idx in self.reason.iter_mut().flatten() {
            debug_assert_ne!(remap[*clause_idx], usize::MAX, "reason clause kept");
            *clause_idx = remap[*clause_idx];
        }
        // Rebuild the watch lists: positions 0 and 1 are the watched literals
        // by invariant, so this reproduces the pre-reduction watch state.
        for list in &mut self.watches {
            list.clear();
        }
        for (i, clause) in self.clauses.iter().enumerate() {
            self.watches[(!clause.lits[0]).code()].push(Watch {
                clause: i,
                blocker: clause.lits[1],
            });
            self.watches[(!clause.lits[1]).code()].push(Watch {
                clause: i,
                blocker: clause.lits[0],
            });
        }
        self.live_learnts -= candidates.len();
        self.stats.db_reductions += 1;
        self.stats.removed_learnts += candidates.len() as u64;
        // Geometric schedule: allow the database to grow 1.5× larger before
        // the next reduction.
        self.learnt_limit += self.learnt_limit / 2;
    }

    /// Solves the formula to completion.
    pub fn solve(&mut self) -> SatResult {
        self.solve_with_limits(Limits::unlimited())
    }

    /// Solves the formula, giving up with [`SatResult::Unknown`] when the
    /// per-call budget in `limits` is exhausted.
    pub fn solve_with_limits(&mut self, limits: Limits) -> SatResult {
        self.solve_with_assumptions(&[], limits)
    }

    /// Solves the formula under temporary unit `assumptions`.
    ///
    /// Assumptions act as forced first decisions: a `Sat` answer satisfies
    /// all of them, while `Unsat` means the formula has no model in which
    /// every assumption holds. In the latter case
    /// [`Solver::failed_assumptions`] returns the subset of assumptions the
    /// refutation actually used. Assumptions do not persist: the solver can
    /// be reused afterwards with different (or no) assumptions, and learnt
    /// clauses derived under assumptions remain valid because conflict
    /// analysis never resolves on decision literals.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit], limits: Limits) -> SatResult {
        let entry = self.stats;
        self.stats.solve_calls += 1;
        self.failed.clear();
        for lit in assumptions {
            assert!(
                lit.var().index() < self.num_vars,
                "assumption literal out of range"
            );
        }
        if self.learnt_limit == 0 {
            self.learnt_limit = (self.clauses.len() / 3).max(2000);
        }
        self.prop_limit = limits
            .max_propagations
            .map(|max| entry.propagations.saturating_add(max));
        self.prop_budget_hit = false;
        let result = self.search(assumptions, limits, &entry);
        self.prop_limit = None;
        self.last_call = self.stats.since(&entry);
        result
    }

    fn search(&mut self, assumptions: &[Lit], limits: Limits, entry: &SolverStats) -> SatResult {
        if !self.ok {
            return SatResult::Unsat;
        }
        self.backjump(0);
        if self.propagate().is_some() {
            self.ok = false;
            return SatResult::Unsat;
        }
        if self.prop_budget_hit {
            return self.give_up_on_propagations();
        }
        if self.live_learnts >= self.learnt_limit {
            self.reduce_db();
        }

        let mut conflicts_since_restart = 0u64;
        let mut restart_limit = 100u64 * luby(self.stats.restarts + 1);

        loop {
            if let Some(max) = limits.max_conflicts {
                if self.stats.conflicts - entry.conflicts >= max {
                    self.backjump(0);
                    return SatResult::Unknown;
                }
            }
            if self.is_interrupted() {
                self.backjump(0);
                return SatResult::Unknown;
            }

            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                if self.current_level() == 0 {
                    self.ok = false;
                    return SatResult::Unsat;
                }
                let (learnt, backtrack_level) = self.analyze(conflict);
                self.backjump(backtrack_level);
                if learnt.len() == 1 {
                    let enqueued = self.enqueue(learnt[0], None);
                    debug_assert!(enqueued);
                } else {
                    let asserting = learnt[0];
                    let idx = self.attach(learnt, true);
                    self.stats.learnt_clauses += 1;
                    let enqueued = self.enqueue(asserting, Some(idx));
                    debug_assert!(enqueued);
                }
                self.var_inc /= 0.95;
                self.cla_inc /= 0.999;
            } else {
                if self.prop_budget_hit {
                    return self.give_up_on_propagations();
                }
                if conflicts_since_restart >= restart_limit {
                    self.stats.restarts += 1;
                    conflicts_since_restart = 0;
                    restart_limit = 100 * luby(self.stats.restarts + 1);
                    self.backjump(0);
                    if self.live_learnts >= self.learnt_limit {
                        self.reduce_db();
                    }
                    continue;
                }
                // Establish the next assumption as a pseudo-decision: level
                // `i + 1` always belongs to `assumptions[i]`.
                let next = self.current_level() as usize;
                if next < assumptions.len() {
                    let p = assumptions[next];
                    match self.lit_value(p) {
                        Some(true) => {
                            // Already implied: open an empty level for it so
                            // the level↔assumption correspondence holds.
                            self.trail_lim.push(self.trail.len());
                        }
                        Some(false) => {
                            self.failed = self.analyze_final(p);
                            self.backjump(0);
                            return SatResult::Unsat;
                        }
                        None => {
                            self.trail_lim.push(self.trail.len());
                            let enqueued = self.enqueue(p, None);
                            debug_assert!(enqueued);
                        }
                    }
                    continue;
                }
                if !self.decide() {
                    // All variables assigned: build the model.
                    let values = self
                        .assign
                        .iter()
                        .map(|v| v.unwrap_or(false))
                        .collect::<Vec<_>>();
                    let model = Model::new(values);
                    self.backjump(0);
                    return SatResult::Sat(model);
                }
            }
        }
    }

    /// Abandons the current call after the propagation budget was hit inside
    /// [`Solver::propagate`]. The propagation queue may be partially drained,
    /// so the next call re-propagates the top-level trail from scratch.
    fn give_up_on_propagations(&mut self) -> SatResult {
        self.backjump(0);
        self.qhead = 0;
        SatResult::Unknown
    }
}

/// The Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, …
fn luby(mut i: u64) -> u64 {
    // Find the finite subsequence containing index i and its size.
    let mut k = 1u32;
    while (1u64 << k) - 1 < i {
        k += 1;
    }
    loop {
        if (1u64 << (k - 1)) - 1 == i {
            return 1u64 << (k - 1);
        }
        if i == 0 {
            return 1;
        }
        if (1u64 << k) - 1 == i {
            return 1u64 << (k - 1);
        }
        i -= (1u64 << (k - 1)) - 1;
        k = 1;
        while (1u64 << k) - 1 < i {
            k += 1;
        }
    }
}

/// An indexed binary max-heap over variables, ordered by activity.
#[derive(Debug, Clone)]
struct VarHeap {
    heap: Vec<usize>,
    position: Vec<Option<usize>>,
}

impl VarHeap {
    fn new(num_vars: usize) -> Self {
        VarHeap {
            heap: Vec::with_capacity(num_vars),
            position: vec![None; num_vars],
        }
    }

    /// Makes room for one more variable (see [`Solver::new_var`]).
    fn grow(&mut self) {
        self.position.push(None);
    }

    fn contains(&self, var: usize) -> bool {
        self.position[var].is_some()
    }

    fn insert(&mut self, var: usize, activity: &[f64]) {
        if self.contains(var) {
            return;
        }
        self.position[var] = Some(self.heap.len());
        self.heap.push(var);
        self.sift_up(self.heap.len() - 1, activity);
    }

    fn update(&mut self, var: usize, activity: &[f64]) {
        if let Some(pos) = self.position[var] {
            self.sift_up(pos, activity);
        }
    }

    fn pop(&mut self, activity: &[f64]) -> Option<usize> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.position[top] = None;
        let last = self.heap.pop().expect("heap non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.position[last] = Some(0);
            self.sift_down(0, activity);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut pos: usize, activity: &[f64]) {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if activity[self.heap[pos]] > activity[self.heap[parent]] {
                self.swap(pos, parent);
                pos = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut pos: usize, activity: &[f64]) {
        loop {
            let left = 2 * pos + 1;
            let right = 2 * pos + 2;
            let mut largest = pos;
            if left < self.heap.len() && activity[self.heap[left]] > activity[self.heap[largest]] {
                largest = left;
            }
            if right < self.heap.len() && activity[self.heap[right]] > activity[self.heap[largest]]
            {
                largest = right;
            }
            if largest == pos {
                break;
            }
            self.swap(pos, largest);
            pos = largest;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.position[self.heap[a]] = Some(a);
        self.position[self.heap[b]] = Some(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: usize, positive: bool) -> Lit {
        Lit::new(Var::new(v as u32), positive)
    }

    /// Brute-force satisfiability check for cross-validation.
    fn brute_force_sat(num_vars: usize, clauses: &[Vec<Lit>]) -> bool {
        assert!(num_vars <= 20, "brute force only for small formulas");
        'outer: for assignment in 0u32..(1 << num_vars) {
            for clause in clauses {
                let satisfied = clause.iter().any(|l| {
                    let bit = (assignment >> l.var().index()) & 1 == 1;
                    bit == l.is_positive()
                });
                if !satisfied {
                    continue 'outer;
                }
            }
            return true;
        }
        false
    }

    fn solve_clauses(num_vars: usize, clauses: &[Vec<Lit>]) -> SatResult {
        let mut solver = Solver::new(num_vars);
        for clause in clauses {
            solver.add_clause(clause.iter().copied());
        }
        solver.solve()
    }

    fn pigeonhole_clauses(pigeons: usize, holes: usize) -> (usize, Vec<Vec<Lit>>) {
        let var = |pigeon: usize, hole: usize| lit(pigeon * holes + hole, true);
        let mut clauses = Vec::new();
        for p in 0..pigeons {
            clauses.push((0..holes).map(|h| var(p, h)).collect::<Vec<_>>());
        }
        for h in 0..holes {
            for a in 0..pigeons {
                for b in (a + 1)..pigeons {
                    clauses.push(vec![!var(a, h), !var(b, h)]);
                }
            }
        }
        (pigeons * holes, clauses)
    }

    #[test]
    fn empty_formula_is_sat() {
        assert!(solve_clauses(3, &[]).is_sat());
    }

    #[test]
    fn unit_clauses_propagate() {
        let clauses = vec![vec![lit(0, true)], vec![lit(0, false), lit(1, true)]];
        match solve_clauses(2, &clauses) {
            SatResult::Sat(model) => {
                assert!(model.value(Var::new(0)));
                assert!(model.value(Var::new(1)));
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn contradictory_units_are_unsat() {
        let clauses = vec![vec![lit(0, true)], vec![lit(0, false)]];
        assert!(solve_clauses(1, &clauses).is_unsat());
    }

    #[test]
    fn pigeonhole_three_into_two_is_unsat() {
        let (num_vars, clauses) = pigeonhole_clauses(3, 2);
        assert!(solve_clauses(num_vars, &clauses).is_unsat());
    }

    #[test]
    fn simple_backtracking_formula() {
        // (a ∨ b) ∧ (¬a ∨ c) ∧ (¬b ∨ c) ∧ (¬c ∨ d) ∧ (¬d ∨ ¬a)
        let clauses = vec![
            vec![lit(0, true), lit(1, true)],
            vec![lit(0, false), lit(2, true)],
            vec![lit(1, false), lit(2, true)],
            vec![lit(2, false), lit(3, true)],
            vec![lit(3, false), lit(0, false)],
        ];
        match solve_clauses(4, &clauses) {
            SatResult::Sat(model) => {
                assert!(model.satisfies(&clauses));
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn model_always_satisfies_formula() {
        let clauses = vec![
            vec![lit(0, true), lit(1, false), lit(2, true)],
            vec![lit(1, true), lit(2, false)],
            vec![lit(0, false), lit(3, true)],
            vec![lit(3, false), lit(4, true), lit(1, true)],
            vec![lit(4, false), lit(0, true)],
        ];
        match solve_clauses(5, &clauses) {
            SatResult::Sat(model) => assert!(model.satisfies(&clauses)),
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn tautological_clauses_are_ignored() {
        let clauses = vec![vec![lit(0, true), lit(0, false)], vec![lit(1, true)]];
        assert!(solve_clauses(2, &clauses).is_sat());
    }

    #[test]
    fn limits_return_unknown() {
        // A hard pigeonhole instance with a tiny conflict budget.
        let (num_vars, clauses) = pigeonhole_clauses(6, 5);
        let mut solver = Solver::new(num_vars);
        for clause in &clauses {
            solver.add_clause(clause.iter().copied());
        }
        let result = solver.solve_with_limits(Limits::conflicts(3));
        assert_eq!(result, SatResult::Unknown);
        // And without limits the instance is UNSAT.
        let mut solver = Solver::new(num_vars);
        for clause in &clauses {
            solver.add_clause(clause.iter().copied());
        }
        assert!(solver.solve().is_unsat());
        assert!(solver.stats().conflicts > 0);
    }

    /// Regression test for cumulative-budget accounting: a second call on a
    /// reused solver must get its own conflict budget instead of being
    /// charged for the lifetime total.
    #[test]
    fn limits_are_per_call_on_a_reused_solver() {
        // Pigeonhole 6-into-5 with a relaxation literal r added to every
        // capacity clause: under the assumption ¬r the instance is the hard
        // UNSAT pigeonhole (burning many conflicts), without assumptions it
        // is trivially SAT by setting r.
        let (pigeons, holes) = (6usize, 5usize);
        let var = |pigeon: usize, hole: usize| lit(pigeon * holes + hole, true);
        let relax = lit(pigeons * holes, true);
        let mut solver = Solver::new(pigeons * holes + 1);
        for p in 0..pigeons {
            solver.add_clause((0..holes).map(|h| var(p, h)));
        }
        for h in 0..holes {
            for a in 0..pigeons {
                for b in (a + 1)..pigeons {
                    solver.add_clause([!var(a, h), !var(b, h), relax]);
                }
            }
        }
        let first = solver.solve_with_assumptions(&[!relax], Limits::unlimited());
        assert!(first.is_unsat());
        let lifetime_conflicts = solver.stats().conflicts;
        assert!(
            lifetime_conflicts >= 1,
            "the refutation must cost conflicts"
        );

        // Second call with a conflict budget no larger than the lifetime
        // total: under the old cumulative accounting this returned Unknown
        // immediately even though the call itself did no work yet.
        let result = solver.solve_with_limits(Limits::conflicts(lifetime_conflicts));
        assert!(
            result.is_sat(),
            "second call spuriously hit a budget it never consumed: {result:?}"
        );
        assert_eq!(solver.last_call_stats().solve_calls, 1);
        assert!(solver.last_call_stats().conflicts <= lifetime_conflicts);
    }

    #[test]
    fn propagation_budget_is_enforced_inside_propagate() {
        // A long implication chain: one decision triggers ~n propagations in
        // a single propagate() pass.
        let n = 8192;
        let mut solver = Solver::new(n);
        // x_{i+1} → x_i: the first decision (¬x0, phases default to false)
        // collapses the whole chain in one propagate() pass.
        for i in 0..(n - 1) {
            solver.add_clause([lit(i, true), lit(i + 1, false)]);
        }
        let result = solver.solve_with_limits(Limits::propagations(2048));
        assert_eq!(
            result,
            SatResult::Unknown,
            "a single propagation pass must respect the budget"
        );
        // The overshoot is bounded by the 1024-step check granularity.
        assert!(solver.last_call_stats().propagations <= 2048 + 1024);
        // The same solver still answers correctly without limits.
        assert!(solver.solve().is_sat());
    }

    #[test]
    fn new_var_grows_a_live_solver() {
        let mut solver = Solver::new(1);
        solver.add_clause([lit(0, true)]);
        assert!(solver.solve().is_sat());
        let v = solver.new_var();
        assert_eq!(solver.num_vars(), 2);
        solver.add_clause([Lit::negative(v)]);
        match solver.solve() {
            SatResult::Sat(model) => {
                assert!(model.value(Var::new(0)));
                assert!(!model.value(v));
            }
            other => panic!("expected SAT, got {other:?}"),
        }
        solver.add_clause([Lit::positive(v)]);
        assert!(solver.solve().is_unsat());
    }

    #[test]
    fn assumptions_are_temporary() {
        // (a ∨ b) with assumption ¬a forces b; without assumptions a is free.
        let mut solver = Solver::new(2);
        solver.add_clause([lit(0, true), lit(1, true)]);
        match solver.solve_with_assumptions(&[lit(0, false)], Limits::unlimited()) {
            SatResult::Sat(model) => {
                assert!(!model.value(Var::new(0)));
                assert!(model.value(Var::new(1)));
            }
            other => panic!("expected SAT, got {other:?}"),
        }
        // The assumption must not have been burned in.
        match solver.solve_with_assumptions(&[lit(0, true), lit(1, false)], Limits::unlimited()) {
            SatResult::Sat(model) => {
                assert!(model.value(Var::new(0)));
                assert!(!model.value(Var::new(1)));
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn failed_assumptions_name_the_culprits() {
        // a → b, b → c; assuming a and ¬c is contradictory, assuming d is not.
        let mut solver = Solver::new(4);
        solver.add_clause([lit(0, false), lit(1, true)]);
        solver.add_clause([lit(1, false), lit(2, true)]);
        let assumptions = [lit(3, true), lit(0, true), lit(2, false)];
        let result = solver.solve_with_assumptions(&assumptions, Limits::unlimited());
        assert!(result.is_unsat());
        let failed = solver.failed_assumptions().to_vec();
        assert!(!failed.is_empty());
        // Every reported literal is one of the assumptions…
        for l in &failed {
            assert!(assumptions.contains(l), "{l} is not an assumption");
        }
        // …and the irrelevant assumption d is not blamed.
        assert!(!failed.contains(&lit(3, true)));
        // The sub-formula remains satisfiable without assumptions.
        assert!(solver.solve().is_sat());
    }

    #[test]
    fn unsat_without_assumptions_reports_no_failed_set() {
        let mut solver = Solver::new(1);
        solver.add_clause([lit(0, true)]);
        solver.add_clause([lit(0, false)]);
        let result = solver.solve_with_assumptions(&[], Limits::unlimited());
        assert!(result.is_unsat());
        assert!(solver.failed_assumptions().is_empty());
    }

    #[test]
    fn assumption_false_at_top_level_fails_alone() {
        let mut solver = Solver::new(2);
        solver.add_clause([lit(0, false)]);
        let result =
            solver.solve_with_assumptions(&[lit(1, true), lit(0, true)], Limits::unlimited());
        assert!(result.is_unsat());
        assert_eq!(solver.failed_assumptions(), &[lit(0, true)]);
    }

    #[test]
    fn learnt_database_reduction_keeps_answers_correct() {
        let (num_vars, clauses) = pigeonhole_clauses(8, 7);
        let mut solver = Solver::new(num_vars);
        for clause in &clauses {
            solver.add_clause(clause.iter().copied());
        }
        solver.set_learnt_limit(50);
        assert!(solver.solve().is_unsat());
        let stats = solver.stats();
        assert!(stats.db_reductions > 0, "no reduction triggered: {stats:?}");
        assert!(stats.removed_learnts > 0);
    }

    #[test]
    fn incremental_solving_reuses_learnt_clauses() {
        let (num_vars, clauses) = pigeonhole_clauses(7, 7);
        let mut solver = Solver::new(num_vars);
        for clause in &clauses {
            solver.add_clause(clause.iter().copied());
        }
        assert!(solver.solve().is_sat());
        let learnts = solver.num_learnts();
        // Strengthen the formula and solve again on the same solver.
        solver.add_clause([lit(0, false)]);
        assert!(solver.solve().is_sat());
        assert!(
            solver.num_learnts() >= learnts,
            "learnt clauses must be carried across calls"
        );
        assert_eq!(solver.stats().solve_calls, 2);
    }

    #[test]
    fn interrupt_raised_before_solving_returns_unknown() {
        let (num_vars, clauses) = pigeonhole_clauses(6, 5);
        let mut solver = Solver::new(num_vars);
        for clause in &clauses {
            solver.add_clause(clause.iter().copied());
        }
        let flag = Arc::new(AtomicBool::new(true));
        solver.set_interrupt(Arc::clone(&flag));
        assert!(solver.is_interrupted());
        assert_eq!(solver.solve(), SatResult::Unknown);
        // Lowering the flag restores full functionality on the same solver.
        flag.store(false, Ordering::Relaxed);
        assert!(!solver.is_interrupted());
        assert!(solver.solve().is_unsat());
    }

    #[test]
    fn interrupt_from_another_thread_stops_a_long_solve_promptly() {
        // Pigeonhole 10-into-9 takes far longer than the test budget; the
        // interrupt must cut the solve short from a concurrent thread.
        let (num_vars, clauses) = pigeonhole_clauses(10, 9);
        let mut solver = Solver::new(num_vars);
        for clause in &clauses {
            solver.add_clause(clause.iter().copied());
        }
        let flag = Arc::new(AtomicBool::new(false));
        solver.set_interrupt(Arc::clone(&flag));
        let result = std::thread::scope(|scope| {
            scope.spawn(|| {
                std::thread::sleep(std::time::Duration::from_millis(50));
                flag.store(true, Ordering::Relaxed);
            });
            let start = std::time::Instant::now();
            let result = solver.solve();
            assert!(
                start.elapsed() < std::time::Duration::from_secs(20),
                "interrupt was not honoured promptly"
            );
            result
        });
        assert_eq!(result, SatResult::Unknown);
        // The interrupted solver answers a small query once cleared.
        solver.clear_interrupt();
        assert!(!solver.is_interrupted());
        let mut small = Solver::new(1);
        small.add_clause([lit(0, true)]);
        assert!(small.solve().is_sat());
    }

    #[test]
    fn luby_sequence_prefix() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let actual: Vec<u64> = (1..=15).map(luby).collect();
        assert_eq!(actual, expected);
    }

    #[test]
    fn agrees_with_brute_force_on_fixed_formulas() {
        let formulas: Vec<(usize, Vec<Vec<Lit>>)> = vec![
            (
                3,
                vec![vec![lit(0, true)], vec![lit(1, true), lit(2, false)]],
            ),
            (
                3,
                vec![
                    vec![lit(0, true), lit(1, true)],
                    vec![lit(0, false), lit(1, false)],
                    vec![lit(1, true), lit(2, true)],
                    vec![lit(1, false), lit(2, false)],
                    vec![lit(0, true), lit(2, true)],
                    vec![lit(0, false), lit(2, false)],
                ],
            ),
        ];
        for (num_vars, clauses) in formulas {
            let expected = brute_force_sat(num_vars, &clauses);
            let actual = solve_clauses(num_vars, &clauses).is_sat();
            assert_eq!(actual, expected);
        }
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        fn clause_strategy(num_vars: usize) -> impl Strategy<Value = Vec<Lit>> {
            proptest::collection::vec(
                (0..num_vars, proptest::bool::ANY).prop_map(|(v, s)| lit(v, s)),
                1..4,
            )
        }

        proptest! {
            /// On random small 3-CNF formulas the CDCL solver agrees with
            /// exhaustive enumeration, and SAT answers carry genuine models.
            #[test]
            fn cdcl_matches_brute_force(
                clauses in proptest::collection::vec(clause_strategy(8), 0..40)
            ) {
                let expected = brute_force_sat(8, &clauses);
                match solve_clauses(8, &clauses) {
                    SatResult::Sat(model) => {
                        prop_assert!(expected);
                        prop_assert!(model.satisfies(&clauses));
                    }
                    SatResult::Unsat => prop_assert!(!expected),
                    SatResult::Unknown => prop_assert!(false, "no limits were set"),
                }
            }

            /// Incremental solving (solve, add clauses, solve again on the
            /// same solver) agrees with a from-scratch solver on the combined
            /// formula — learnt-clause reuse must not change answers.
            #[test]
            fn incremental_agrees_with_from_scratch(
                base in proptest::collection::vec(clause_strategy(8), 0..25),
                extra in proptest::collection::vec(clause_strategy(8), 0..25)
            ) {
                let mut incremental = Solver::new(8);
                for clause in &base {
                    incremental.add_clause(clause.iter().copied());
                }
                let first = incremental.solve();
                prop_assert_eq!(first.is_sat(), brute_force_sat(8, &base));
                for clause in &extra {
                    incremental.add_clause(clause.iter().copied());
                }
                let second = incremental.solve();

                let mut combined: Vec<Vec<Lit>> = base.clone();
                combined.extend(extra.iter().cloned());
                let expected = brute_force_sat(8, &combined);
                match second {
                    SatResult::Sat(model) => {
                        prop_assert!(expected);
                        prop_assert!(model.satisfies(&combined));
                    }
                    SatResult::Unsat => prop_assert!(!expected),
                    SatResult::Unknown => prop_assert!(false, "no limits were set"),
                }
            }

            /// Solving under assumptions agrees with burning the assumptions
            /// in as unit clauses on a fresh solver.
            #[test]
            fn assumptions_agree_with_unit_clauses(
                clauses in proptest::collection::vec(clause_strategy(6), 0..20),
                assumed in proptest::collection::vec(
                    (0..6usize, proptest::bool::ANY).prop_map(|(v, s)| lit(v, s)), 0..3)
            ) {
                let mut solver = Solver::new(6);
                for clause in &clauses {
                    solver.add_clause(clause.iter().copied());
                }
                let under_assumptions = solver
                    .solve_with_assumptions(&assumed, Limits::unlimited())
                    .is_sat();

                let mut burned: Vec<Vec<Lit>> = clauses.clone();
                for &a in &assumed {
                    burned.push(vec![a]);
                }
                prop_assert_eq!(under_assumptions, brute_force_sat(6, &burned));
            }
        }
    }
}
