//! A conflict-driven clause-learning (CDCL) SAT solver.
//!
//! The implementation follows the classic MiniSat architecture:
//! two-watched-literal unit propagation, first-UIP conflict analysis with
//! clause learning and non-chronological backjumping, activity-ordered
//! (VSIDS) decision making with phase saving, and Luby-sequence restarts.
//!
//! # Memory layout
//!
//! Clauses live in a flat `u32` *arena* ([`ClauseArena`]): each clause is a
//! three-word header (length + flags, activity, LBD) followed by its literal
//! codes, all in one contiguous buffer. Clause references are arena offsets,
//! so propagation walks a single allocation instead of chasing a
//! `Vec<Vec<Lit>>` of boxed clauses. Binary clauses are specialised straight
//! into the watch lists — the watch entry itself carries the other literal —
//! and never touch the arena, which removes a dependent load from the
//! binary-propagation fast path. Watch lists are flat `Vec<Watch>` compacted
//! in place while propagating (two-pointer sweep), not rebuilt per literal.
//!
//! # Search quality
//!
//! Learnt clauses are shrunk by recursive conflict-clause minimization
//! (MiniSat's `litRedundant`) before attachment, and each one is tagged with
//! its LBD ("glue" — the number of distinct decision levels among its
//! literals). Database reduction is LBD-first: clauses with glue ≤ 2 are
//! never evicted, the rest are ranked by (glue, activity) and the worst half
//! is dropped on a geometric schedule. [`SolverStats`] exposes the LBD
//! histogram and the minimized-literal count.
//!
//! The solver is *incremental*: clauses and variables may be added between
//! solve calls ([`Solver::add_clause`], [`Solver::new_var`]), learnt clauses
//! are kept across calls (subject to database reduction), and
//! [`Solver::solve_with_assumptions`] decides the formula under a set of
//! temporary unit assumptions without permanently binding them. Resource
//! [`Limits`] are accounted *per call*: each solve call gets its own fresh
//! conflict and propagation budget, regardless of how much work earlier calls
//! on the same solver performed.

use crate::cnf::Cnf;
use crate::lit::{Lit, Var};
use crate::model::Model;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Resource limits for a single [`Solver::solve_with_limits`] call.
///
/// Budgets are measured against the work performed by *that call alone*: a
/// reused solver does not inherit the consumption of earlier calls.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Limits {
    /// Maximum number of conflicts before giving up with
    /// [`SatResult::Unknown`]. `None` means unlimited.
    pub max_conflicts: Option<u64>,
    /// Maximum number of unit propagations before giving up. `None` means
    /// unlimited. The budget is checked *inside* the propagation loop (every
    /// 1024 propagated literals), so a single runaway propagation pass cannot
    /// overshoot it by more than that granularity.
    pub max_propagations: Option<u64>,
}

impl Limits {
    /// No limits: the solver runs to completion.
    pub fn unlimited() -> Self {
        Limits::default()
    }

    /// Limits the number of conflicts.
    pub fn conflicts(max_conflicts: u64) -> Self {
        Limits {
            max_conflicts: Some(max_conflicts),
            max_propagations: None,
        }
    }

    /// Limits the number of unit propagations.
    pub fn propagations(max_propagations: u64) -> Self {
        Limits {
            max_conflicts: None,
            max_propagations: Some(max_propagations),
        }
    }
}

/// Outcome of a solve call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatResult {
    /// The formula is satisfiable; a witnessing assignment is attached.
    Sat(Model),
    /// The formula is unsatisfiable. For
    /// [`Solver::solve_with_assumptions`] this means unsatisfiable *under
    /// the assumptions*; [`Solver::failed_assumptions`] names the culprits.
    Unsat,
    /// The resource budget was exhausted before an answer was found.
    Unknown,
}

impl SatResult {
    /// Returns the model when satisfiable.
    pub fn model(self) -> Option<Model> {
        match self {
            SatResult::Sat(model) => Some(model),
            _ => None,
        }
    }

    /// Whether the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }

    /// Whether the result is `Unsat`.
    pub fn is_unsat(&self) -> bool {
        matches!(self, SatResult::Unsat)
    }
}

/// Number of buckets of the learnt-clause LBD histogram in [`SolverStats`]:
/// bucket `i` counts learnt clauses with glue `i + 1`; the last bucket
/// aggregates everything at or above [`SolverStats::LBD_BUCKETS`].
pub const LBD_BUCKETS: usize = 8;

/// Counters describing the work performed by the solver.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of learnt clauses added.
    pub learnt_clauses: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of solve calls issued against this solver.
    pub solve_calls: u64,
    /// Number of learnt-clause database reductions performed.
    pub db_reductions: u64,
    /// Number of learnt clauses evicted by database reductions.
    pub removed_learnts: u64,
    /// Literals removed from learnt clauses by conflict-clause minimization
    /// before attachment.
    pub minimized_literals: u64,
    /// Histogram of learnt-clause LBD ("glue") values: bucket `i` counts the
    /// learnt clauses whose glue was `i + 1` at learn time; the final bucket
    /// aggregates glue ≥ [`LBD_BUCKETS`].
    pub lbd_histogram: [u64; LBD_BUCKETS],
}

impl SolverStats {
    /// Number of buckets of [`SolverStats::lbd_histogram`].
    pub const LBD_BUCKETS: usize = LBD_BUCKETS;

    /// Field-wise difference `self - earlier`, used for per-call accounting.
    fn since(&self, earlier: &SolverStats) -> SolverStats {
        let mut lbd_histogram = [0u64; LBD_BUCKETS];
        for (i, slot) in lbd_histogram.iter_mut().enumerate() {
            *slot = self.lbd_histogram[i] - earlier.lbd_histogram[i];
        }
        SolverStats {
            decisions: self.decisions - earlier.decisions,
            conflicts: self.conflicts - earlier.conflicts,
            propagations: self.propagations - earlier.propagations,
            learnt_clauses: self.learnt_clauses - earlier.learnt_clauses,
            restarts: self.restarts - earlier.restarts,
            solve_calls: self.solve_calls - earlier.solve_calls,
            db_reductions: self.db_reductions - earlier.db_reductions,
            removed_learnts: self.removed_learnts - earlier.removed_learnts,
            minimized_literals: self.minimized_literals - earlier.minimized_literals,
            lbd_histogram,
        }
    }

    /// Records one learnt clause's glue in the histogram.
    fn record_lbd(&mut self, lbd: u32) {
        let bucket = (lbd.max(1) as usize - 1).min(LBD_BUCKETS - 1);
        self.lbd_histogram[bucket] += 1;
    }
}

/// Words of clause metadata preceding the literals in the arena:
/// `[len | flags]`, `activity` (f32 bits), `lbd`.
const HEADER_WORDS: usize = 3;

/// Watch-entry tag: the entry is a specialised binary clause (the clause is
/// `[blocker, ¬watched]` and lives only in the two watch lists, not in the
/// arena).
const WATCH_BINARY: u32 = 1 << 31;
/// Watch-entry tag qualifying [`WATCH_BINARY`]: the binary clause is learnt.
const WATCH_BINARY_LEARNT: u32 = 1 << 30;

/// The flat clause store: every non-binary clause is a [`HEADER_WORDS`]-word
/// header followed by its literal codes, packed into one contiguous `u32`
/// buffer. A clause reference is the offset of its header.
#[derive(Debug, Clone, Default)]
struct ClauseArena {
    data: Vec<u32>,
}

impl ClauseArena {
    /// Appends a clause and returns its reference.
    fn alloc(&mut self, lits: &[Lit], learnt: bool) -> u32 {
        debug_assert!(lits.len() >= 3, "binary clauses live in the watch lists");
        // References must stay clear of the WATCH_BINARY/WATCH_BINARY_LEARNT
        // tag bits, or a large arena would have its clauses misread as
        // specialised binaries — fail hard instead of corrupting.
        assert!(
            self.data.len() < (1 << 30),
            "clause arena exceeds 2^30 words"
        );
        let cref = u32::try_from(self.data.len()).expect("arena offset fits in u32");
        let len = u32::try_from(lits.len()).expect("clause length fits in u32");
        self.data.push((len << 2) | u32::from(learnt));
        self.data.push(0f32.to_bits());
        self.data.push(0); // LBD, set by the learner of the clause
        self.data.extend(
            lits.iter()
                .map(|l| u32::try_from(l.code()).expect("literal code fits in u32")),
        );
        cref
    }

    fn len(&self, cref: u32) -> usize {
        (self.data[cref as usize] >> 2) as usize
    }

    fn is_learnt(&self, cref: u32) -> bool {
        self.data[cref as usize] & 1 != 0
    }

    fn is_marked(&self, cref: u32) -> bool {
        self.data[cref as usize] & 2 != 0
    }

    fn mark(&mut self, cref: u32) {
        self.data[cref as usize] |= 2;
    }

    fn lit(&self, cref: u32, k: usize) -> Lit {
        Lit::from_code(self.data[cref as usize + HEADER_WORDS + k] as usize)
    }

    fn swap_lits(&mut self, cref: u32, a: usize, b: usize) {
        let base = cref as usize + HEADER_WORDS;
        self.data.swap(base + a, base + b);
    }

    fn activity(&self, cref: u32) -> f32 {
        f32::from_bits(self.data[cref as usize + 1])
    }

    fn set_activity(&mut self, cref: u32, activity: f32) {
        self.data[cref as usize + 1] = activity.to_bits();
    }

    fn lbd(&self, cref: u32) -> u32 {
        self.data[cref as usize + 2]
    }

    fn set_lbd(&mut self, cref: u32, lbd: u32) {
        self.data[cref as usize + 2] = lbd;
    }
}

/// A watch-list entry. For arena clauses `cref` is the clause's offset and
/// `blocker` a literal whose truth satisfies the clause without touching the
/// arena. For specialised binary clauses (`cref & WATCH_BINARY != 0`) the
/// entry *is* the clause: `[blocker, ¬watched]`.
#[derive(Debug, Clone, Copy)]
struct Watch {
    cref: u32,
    blocker: Lit,
}

/// Why a literal is on the trail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Reason {
    /// A decision, an assumption, or a top-level fact.
    None,
    /// Propagated by the arena clause at this offset (the literal is at
    /// position 0).
    Clause(u32),
    /// Propagated by a specialised binary clause `[lit, other]` where
    /// `other` is false.
    Binary(Lit),
}

/// A falsified clause, as found by propagation.
#[derive(Debug, Clone, Copy)]
enum Conflict {
    Clause(u32),
    Binary(Lit, Lit),
}

/// The CDCL solver. Construct it from a [`Cnf`] and call [`Solver::solve`].
#[derive(Debug, Clone)]
pub struct Solver {
    num_vars: usize,
    arena: ClauseArena,
    /// Arena references of the original (problem) clauses.
    clauses: Vec<u32>,
    /// Arena references of the learnt clauses (all of length ≥ 3; binary
    /// learnts are specialised into the watch lists).
    learnts: Vec<u32>,
    watches: Vec<Vec<Watch>>,
    assign: Vec<Option<bool>>,
    level: Vec<u32>,
    reason: Vec<Reason>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    phase: Vec<bool>,
    /// Whether the variable may be picked as a decision; retired variables
    /// (see [`Solver::set_decision`]) are skipped by the VSIDS heap.
    decision: Vec<bool>,
    heap: VarHeap,
    seen: Vec<bool>,
    /// Scratch for conflict-clause minimization: literals whose `seen` flag
    /// must be cleared when the current conflict analysis finishes.
    to_clear: Vec<Lit>,
    /// Scratch stack of `lit_redundant`.
    min_stack: Vec<Lit>,
    /// Per-level stamp used to compute LBD without clearing a set.
    level_stamp: Vec<u64>,
    stamp: u64,
    ok: bool,
    /// When `ok` is false: a variable involved in the refutation's final
    /// step, identifying (under [`Solver::remove_vars_from`]'s var-disjoint
    /// contract) the clause block the refutation lives in. `None` means the
    /// refutation is block-independent (an empty input clause).
    unsat_witness: Option<usize>,
    stats: SolverStats,
    last_call: SolverStats,
    /// Learnt clauses currently attached to the database (arena learnts plus
    /// specialised binary learnts).
    live_learnts: usize,
    /// Reduce the learnt database when `live_learnts` reaches this; `0` means
    /// "pick automatically on the first solve call".
    learnt_limit: usize,
    /// Absolute propagation count at which the current call must give up.
    prop_limit: Option<u64>,
    prop_budget_hit: bool,
    failed: Vec<Lit>,
    /// Cooperative interrupt: when the flag is raised by another thread the
    /// current solve call abandons its work with [`SatResult::Unknown`].
    interrupt: Option<Arc<AtomicBool>>,
}

impl Solver {
    /// Creates a solver over `num_vars` variables with no clauses.
    pub fn new(num_vars: usize) -> Self {
        let mut heap = VarHeap::new(num_vars);
        let initial_activity = vec![0.0; num_vars];
        for v in 0..num_vars {
            heap.insert(v, &initial_activity);
        }
        Solver {
            num_vars,
            arena: ClauseArena::default(),
            clauses: Vec::new(),
            learnts: Vec::new(),
            watches: vec![Vec::new(); num_vars * 2],
            assign: vec![None; num_vars],
            level: vec![0; num_vars],
            reason: vec![Reason::None; num_vars],
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: vec![0.0; num_vars],
            var_inc: 1.0,
            cla_inc: 1.0,
            phase: vec![false; num_vars],
            decision: vec![true; num_vars],
            heap,
            seen: vec![false; num_vars],
            to_clear: Vec::new(),
            min_stack: Vec::new(),
            level_stamp: vec![0; num_vars + 1],
            stamp: 0,
            ok: true,
            unsat_witness: None,
            stats: SolverStats::default(),
            last_call: SolverStats::default(),
            live_learnts: 0,
            learnt_limit: 0,
            prop_limit: None,
            prop_budget_hit: false,
            failed: Vec::new(),
            interrupt: None,
        }
    }

    /// Creates a solver and loads every clause of `cnf`.
    pub fn from_cnf(cnf: &Cnf) -> Self {
        let mut solver = Solver::new(cnf.num_vars());
        for clause in cnf.clauses() {
            solver.add_clause(clause.iter().copied());
        }
        solver
    }

    /// Statistics accumulated over the solver's whole lifetime.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Statistics of the most recent solve call only (per-call counters).
    pub fn last_call_stats(&self) -> SolverStats {
        self.last_call
    }

    /// Number of variables known to the solver.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of learnt clauses currently in the database — the clauses a
    /// subsequent solve call on this solver will reuse.
    pub fn num_learnts(&self) -> usize {
        self.live_learnts
    }

    /// Allocates a fresh variable and returns it. The variable participates
    /// in decisions and may appear in clauses added afterwards.
    pub fn new_var(&mut self) -> Var {
        let v = self.num_vars;
        self.num_vars += 1;
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.assign.push(None);
        self.level.push(0);
        self.reason.push(Reason::None);
        self.activity.push(0.0);
        self.phase.push(false);
        self.decision.push(true);
        self.seen.push(false);
        self.level_stamp.push(0);
        self.heap.grow();
        self.heap.insert(v, &self.activity);
        Var::new(u32::try_from(v).expect("variable count fits in u32"))
    }

    /// Sets whether `var` may be picked as a decision variable. Retiring a
    /// variable (`decision = false`) removes it from the VSIDS heap until it
    /// is re-enabled.
    ///
    /// # Caller contract
    ///
    /// A retired variable is never assigned by the search unless unit
    /// propagation forces it, and an unassigned variable defaults to `false`
    /// in a `Sat` model. A clause with **two or more** unassigned retired
    /// literals therefore escapes propagation entirely and may be violated
    /// by the reported model. Only retire a variable whose clauses have been
    /// deleted (see [`Solver::remove_vars_from`], which maintains this
    /// invariant itself) or whose value is genuinely unconstrained.
    pub fn set_decision(&mut self, var: Var, decision: bool) {
        let v = var.index();
        assert!(v < self.num_vars, "variable out of range");
        self.decision[v] = decision;
        if decision && self.assign[v].is_none() {
            self.heap.insert(v, &self.activity);
        }
    }

    /// Sets the learnt-database size at which the next reduction triggers.
    /// The limit then grows geometrically (×1.5) after every reduction.
    pub fn set_learnt_limit(&mut self, limit: usize) {
        self.learnt_limit = limit.max(1);
    }

    /// Installs a cooperative interrupt flag, shared with other threads.
    ///
    /// The flag is polled inside [`Solver::propagate`] (with the same
    /// 1024-propagation granularity as the propagation budget) and once per
    /// conflict-loop iteration, so raising it from another thread makes an
    /// in-flight solve call give up with [`SatResult::Unknown`] promptly —
    /// this is what lets the learner's speculative portfolio cancel workers
    /// whose state count has become moot. The solver itself never clears the
    /// flag; an interrupted solver remains usable and answers correctly once
    /// the flag is lowered (or [cleared](Solver::clear_interrupt)).
    pub fn set_interrupt(&mut self, flag: Arc<AtomicBool>) {
        self.interrupt = Some(flag);
    }

    /// Removes an installed interrupt flag.
    pub fn clear_interrupt(&mut self) {
        self.interrupt = None;
    }

    /// Whether an installed interrupt flag is currently raised.
    pub fn is_interrupted(&self) -> bool {
        self.interrupt
            .as_ref()
            .is_some_and(|flag| flag.load(Ordering::Relaxed))
    }

    /// The subset of the assumptions passed to the last
    /// [`Solver::solve_with_assumptions`] call that was used to derive its
    /// `Unsat` answer (the "final conflict clause" in assumption terms).
    /// Empty when the formula is unsatisfiable regardless of assumptions, or
    /// when the last call did not end in assumption failure.
    pub fn failed_assumptions(&self) -> &[Lit] {
        &self.failed
    }

    fn lit_value(&self, lit: Lit) -> Option<bool> {
        self.assign[lit.var().index()].map(|v| v == lit.is_positive())
    }

    fn current_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Adds a clause. Clauses may be added between solve calls; solving
    /// always restarts from decision level zero, so late additions are
    /// handled correctly.
    ///
    /// # Panics
    ///
    /// Panics if a literal refers to a variable outside the solver's range.
    pub fn add_clause<I>(&mut self, lits: I)
    where
        I: IntoIterator<Item = Lit>,
    {
        if !self.ok {
            return;
        }
        // Reset to decision level 0 so value checks below are top-level facts.
        self.backjump(0);
        let mut clause: Vec<Lit> = lits.into_iter().collect();
        for lit in &clause {
            assert!(lit.var().index() < self.num_vars, "literal out of range");
        }
        clause.sort();
        clause.dedup();
        // Tautologies are trivially satisfied.
        for i in 1..clause.len() {
            if clause[i] == !clause[i - 1] {
                return;
            }
        }
        // Remove literals already false at top level; drop satisfied clauses.
        // A clause emptied this way is still attributable to its variables'
        // block, so remember one before they go.
        let witness = clause.first().map(|l| l.var().index());
        clause.retain(|&l| self.lit_value(l) != Some(false));
        if clause.iter().any(|&l| self.lit_value(l) == Some(true)) {
            return;
        }
        match clause.len() {
            0 => {
                self.ok = false;
                self.unsat_witness = witness;
            }
            1 => {
                if !self.enqueue(clause[0], Reason::None) || self.propagate().is_some() {
                    self.ok = false;
                    self.unsat_witness = Some(clause[0].var().index());
                }
            }
            2 => self.attach_binary(clause[0], clause[1], false),
            _ => {
                self.attach(&clause, false);
            }
        }
    }

    /// Attaches a non-binary clause to the arena and the watch lists.
    fn attach(&mut self, lits: &[Lit], learnt: bool) -> u32 {
        let cref = self.arena.alloc(lits, learnt);
        self.watches[(!lits[0]).code()].push(Watch {
            cref,
            blocker: lits[1],
        });
        self.watches[(!lits[1]).code()].push(Watch {
            cref,
            blocker: lits[0],
        });
        if learnt {
            self.live_learnts += 1;
            self.learnts.push(cref);
        } else {
            self.clauses.push(cref);
        }
        cref
    }

    /// Attaches a binary clause `[a, b]` directly into the watch lists.
    fn attach_binary(&mut self, a: Lit, b: Lit, learnt: bool) {
        let tag = WATCH_BINARY | if learnt { WATCH_BINARY_LEARNT } else { 0 };
        self.watches[(!a).code()].push(Watch {
            cref: tag,
            blocker: b,
        });
        self.watches[(!b).code()].push(Watch {
            cref: tag,
            blocker: a,
        });
        if learnt {
            self.live_learnts += 1;
        }
    }

    fn enqueue(&mut self, lit: Lit, reason: Reason) -> bool {
        match self.lit_value(lit) {
            Some(true) => true,
            Some(false) => false,
            None => {
                let v = lit.var().index();
                self.assign[v] = Some(lit.is_positive());
                self.level[v] = self.current_level();
                self.reason[v] = reason;
                self.trail.push(lit);
                true
            }
        }
    }

    fn propagate(&mut self) -> Option<Conflict> {
        while self.qhead < self.trail.len() {
            // Enforce the propagation budget and poll the interrupt flag
            // *inside* the loop (with 1024-step granularity) so a single long
            // propagation pass cannot blow past either: the solve loop only
            // regains control between conflicts.
            if self.stats.propagations & 1023 == 0 {
                if let Some(limit) = self.prop_limit {
                    if self.stats.propagations >= limit {
                        self.prop_budget_hit = true;
                        return None;
                    }
                }
                if self.is_interrupted() {
                    self.prop_budget_hit = true;
                    return None;
                }
            }
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;

            // Compact the watch list in place with a two-pointer sweep; the
            // Vec is moved out for the duration (no allocation) because the
            // loop also pushes onto *other* literals' lists.
            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            let mut conflict: Option<Conflict> = None;
            let n = ws.len();
            let mut i = 0usize;
            let mut j = 0usize;
            'watches: while i < n {
                let w = ws[i];
                i += 1;
                if w.cref & WATCH_BINARY != 0 {
                    // Specialised binary clause [w.blocker, false_lit]: no
                    // arena access, the watch entry never moves.
                    ws[j] = w;
                    j += 1;
                    match self.lit_value(w.blocker) {
                        Some(true) => {}
                        Some(false) => {
                            conflict = Some(Conflict::Binary(w.blocker, false_lit));
                            break 'watches;
                        }
                        None => {
                            let enqueued = self.enqueue(w.blocker, Reason::Binary(false_lit));
                            debug_assert!(enqueued, "unit literal must be assignable");
                        }
                    }
                    continue;
                }
                if self.lit_value(w.blocker) == Some(true) {
                    ws[j] = w;
                    j += 1;
                    continue;
                }
                let cref = w.cref;
                // Ensure the falsified literal is at position 1.
                if self.arena.lit(cref, 0) == false_lit {
                    self.arena.swap_lits(cref, 0, 1);
                }
                let first = self.arena.lit(cref, 0);
                if first != w.blocker && self.lit_value(first) == Some(true) {
                    ws[j] = Watch {
                        cref,
                        blocker: first,
                    };
                    j += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.arena.len(cref);
                for k in 2..len {
                    let candidate = self.arena.lit(cref, k);
                    if self.lit_value(candidate) != Some(false) {
                        self.arena.swap_lits(cref, 1, k);
                        self.watches[(!candidate).code()].push(Watch {
                            cref,
                            blocker: first,
                        });
                        continue 'watches;
                    }
                }
                // Clause is unit or conflicting under the current assignment.
                ws[j] = Watch {
                    cref,
                    blocker: first,
                };
                j += 1;
                if self.lit_value(first) == Some(false) {
                    conflict = Some(Conflict::Clause(cref));
                    break 'watches;
                }
                let enqueued = self.enqueue(first, Reason::Clause(cref));
                debug_assert!(enqueued, "unit literal must be assignable");
            }
            if conflict.is_some() {
                // Keep the watches not yet examined.
                while i < n {
                    ws[j] = ws[i];
                    j += 1;
                    i += 1;
                }
                self.qhead = self.trail.len();
            }
            ws.truncate(j);
            debug_assert!(
                self.watches[p.code()].is_empty(),
                "no watch is ever added for the literal being propagated"
            );
            self.watches[p.code()] = ws;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    fn bump_var(&mut self, var: usize) {
        self.activity[var] += self.var_inc;
        if self.activity[var] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.update(var, &self.activity);
    }

    fn bump_clause(&mut self, cref: u32) {
        if !self.arena.is_learnt(cref) {
            return;
        }
        let bumped = self.arena.activity(cref) + self.cla_inc as f32;
        self.arena.set_activity(cref, bumped);
        if bumped > 1e20 {
            for i in 0..self.learnts.len() {
                let c = self.learnts[i];
                let rescaled = self.arena.activity(c) * 1e-20;
                self.arena.set_activity(c, rescaled);
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// Views `lit`'s reason as a clause with `lit` in first position, for
    /// uniform literal iteration via [`Solver::conflict_len`] /
    /// [`Solver::conflict_lit`]. `None` for decisions, assumptions and
    /// top-level facts.
    fn reason_cause(&self, lit: Lit, reason: Reason) -> Option<Conflict> {
        match reason {
            Reason::None => None,
            Reason::Clause(cref) => Some(Conflict::Clause(cref)),
            Reason::Binary(other) => Some(Conflict::Binary(lit, other)),
        }
    }

    /// Number of literals in `cause`.
    fn conflict_len(&self, cause: Conflict) -> usize {
        match cause {
            Conflict::Clause(cref) => self.arena.len(cref),
            Conflict::Binary(..) => 2,
        }
    }

    /// The `k`-th literal of `cause`.
    fn conflict_lit(&self, cause: Conflict, k: usize) -> Lit {
        match cause {
            Conflict::Clause(cref) => self.arena.lit(cref, k),
            Conflict::Binary(a, b) => {
                if k == 0 {
                    a
                } else {
                    b
                }
            }
        }
    }

    /// First-UIP conflict analysis with recursive clause minimization.
    /// Returns the learnt clause (asserting literal first, a highest-level
    /// literal second), the backtrack level, and the clause's LBD.
    fn analyze(&mut self, conflict: Conflict) -> (Vec<Lit>, u32, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::positive(Var::new(0))]; // placeholder for the asserting literal
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let current = self.current_level();
        let mut cause = conflict;

        loop {
            if let Conflict::Clause(cref) = cause {
                self.bump_clause(cref);
            }
            let skip = usize::from(p.is_some());
            let len = self.conflict_len(cause);
            for k in skip..len {
                let q = self.conflict_lit(cause, k);
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var(v);
                    if self.level[v] >= current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next literal of the current level to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            let v = lit.var().index();
            self.seen[v] = false;
            counter -= 1;
            p = Some(lit);
            if counter == 0 {
                break;
            }
            cause = self
                .reason_cause(lit, self.reason[v])
                .expect("non-UIP literal has a reason clause");
        }
        learnt[0] = !p.expect("analysis produced an asserting literal");

        // Conflict-clause minimization: drop every literal whose reason
        // clause resolves entirely into other learnt literals (and top-level
        // facts) — MiniSat's recursive `litRedundant`. The `seen` flags of
        // the learnt literals are still set here and serve as the "absorbed"
        // marker; `to_clear` collects every extra flag raised on the way.
        self.to_clear.clear();
        self.to_clear.extend_from_slice(&learnt[1..]);
        let mut kept = 1;
        for i in 1..learnt.len() {
            let l = learnt[i];
            let redundant =
                !matches!(self.reason[l.var().index()], Reason::None) && self.lit_redundant(l);
            if !redundant {
                learnt[kept] = l;
                kept += 1;
            }
        }
        self.stats.minimized_literals += (learnt.len() - kept) as u64;
        learnt.truncate(kept);

        // Clear the seen flags of every literal visited.
        let to_clear = std::mem::take(&mut self.to_clear);
        for &l in &to_clear {
            self.seen[l.var().index()] = false;
        }
        self.to_clear = to_clear;

        // Compute the backtrack level: the highest level among the non-asserting literals.
        let backtrack_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_idx = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_idx].var().index()] {
                    max_idx = i;
                }
            }
            learnt.swap(1, max_idx);
            self.level[learnt[1].var().index()]
        };

        // LBD ("glue"): distinct decision levels among the learnt literals,
        // counted with a per-level stamp instead of a cleared set.
        self.stamp += 1;
        let mut lbd = 0u32;
        for &l in &learnt {
            let lv = self.level[l.var().index()] as usize;
            if self.level_stamp[lv] != self.stamp {
                self.level_stamp[lv] = self.stamp;
                lbd += 1;
            }
        }
        (learnt, backtrack_level, lbd)
    }

    /// Whether `p`'s reason clause resolves entirely into literals already
    /// absorbed by the learnt clause (marked `seen`) or top-level facts —
    /// i.e. whether `p` is redundant in the learnt clause. Newly absorbed
    /// literals are marked `seen` (memoised for the rest of this conflict)
    /// and recorded in `to_clear`; on failure the marks this call added are
    /// rolled back.
    fn lit_redundant(&mut self, p: Lit) -> bool {
        let top = self.to_clear.len();
        self.min_stack.clear();
        self.min_stack.push(p);
        while let Some(q) = self.min_stack.pop() {
            let cause = self
                .reason_cause(q, self.reason[q.var().index()])
                .expect("candidate literals have reason clauses");
            for k in 1..self.conflict_len(cause) {
                let l = self.conflict_lit(cause, k);
                let v = l.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    if matches!(self.reason[v], Reason::None) {
                        // Resolves into a decision/assumption: not redundant.
                        // Roll back the marks this call made.
                        for idx in top..self.to_clear.len() {
                            self.seen[self.to_clear[idx].var().index()] = false;
                        }
                        self.to_clear.truncate(top);
                        return false;
                    }
                    self.seen[v] = true;
                    self.to_clear.push(l);
                    self.min_stack.push(l);
                }
            }
        }
        true
    }

    /// Computes the subset of assumptions responsible for forcing the
    /// assumption `p` false (MiniSat's `analyzeFinal`). The returned literals
    /// are in the caller's polarity: the set cannot be jointly assumed.
    fn analyze_final(&mut self, p: Lit) -> Vec<Lit> {
        let mut out = vec![p];
        if self.current_level() == 0 {
            return out;
        }
        self.seen[p.var().index()] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let lit = self.trail[i];
            let v = lit.var().index();
            if !self.seen[v] {
                continue;
            }
            match self.reason_cause(lit, self.reason[v]) {
                // Decisions above level 0 are exactly the assumptions.
                None => out.push(lit),
                Some(cause) => {
                    for k in 1..self.conflict_len(cause) {
                        let l = self.conflict_lit(cause, k);
                        if self.level[l.var().index()] > 0 {
                            self.seen[l.var().index()] = true;
                        }
                    }
                }
            }
            self.seen[v] = false;
        }
        self.seen[p.var().index()] = false;
        out
    }

    fn backjump(&mut self, target_level: u32) {
        if self.current_level() <= target_level {
            return;
        }
        let keep = self.trail_lim[target_level as usize];
        while self.trail.len() > keep {
            let lit = self.trail.pop().expect("trail entry");
            let v = lit.var().index();
            self.phase[v] = lit.is_positive();
            self.assign[v] = None;
            self.reason[v] = Reason::None;
            if self.decision[v] {
                self.heap.insert(v, &self.activity);
            }
        }
        self.trail_lim.truncate(target_level as usize);
        self.qhead = self.trail.len();
    }

    fn decide(&mut self) -> bool {
        while let Some(v) = self.heap.pop(&self.activity) {
            if self.assign[v].is_none() && self.decision[v] {
                self.stats.decisions += 1;
                self.trail_lim.push(self.trail.len());
                let lit = Lit::new(Var::new(v as u32), self.phase[v]);
                let enqueued = self.enqueue(lit, Reason::None);
                debug_assert!(enqueued);
                return true;
            }
        }
        false
    }

    /// Halves the learnt-clause database with the LBD-first policy: clauses
    /// with glue ≤ 2 are never evicted, the rest are ranked worst-first by
    /// (glue descending, activity ascending) and the worst half is dropped.
    /// Must be called at decision level 0. Reason clauses of top-level
    /// assignments and binary clauses are never evicted.
    fn reduce_db(&mut self) {
        debug_assert_eq!(self.current_level(), 0, "reduce_db runs at level 0");
        let mut locked: Vec<u32> = Vec::new();
        for v in 0..self.num_vars {
            if self.assign[v].is_some() {
                if let Reason::Clause(cref) = self.reason[v] {
                    locked.push(cref);
                }
            }
        }
        locked.sort_unstable();
        let mut candidates: Vec<u32> = self
            .learnts
            .iter()
            .copied()
            .filter(|&c| self.arena.lbd(c) > 2 && locked.binary_search(&c).is_err())
            .collect();
        // Worst first: highest glue, then lowest activity.
        candidates.sort_by(|&a, &b| {
            self.arena
                .lbd(b)
                .cmp(&self.arena.lbd(a))
                .then_with(|| {
                    self.arena
                        .activity(a)
                        .partial_cmp(&self.arena.activity(b))
                        .expect("clause activities are finite")
                })
                .then_with(|| b.cmp(&a))
        });
        candidates.truncate(candidates.len() / 2);
        if candidates.is_empty() {
            // Nothing evictable: raise the limit so the check is not retried
            // on every restart.
            self.learnt_limit += self.learnt_limit / 2 + 1;
            return;
        }
        for &cref in &candidates {
            self.arena.mark(cref);
        }
        let removed = candidates.len();
        self.remove_marked();
        self.live_learnts -= removed;
        self.stats.db_reductions += 1;
        self.stats.removed_learnts += removed as u64;
        // Geometric schedule: allow the database to grow 1.5× larger before
        // the next reduction.
        self.learnt_limit += self.learnt_limit / 2;
    }

    /// Detaches every marked arena clause and compacts the arena, remapping
    /// the clause references held by watch lists and reasons. Specialised
    /// binary watches are untouched. Marked clauses must not be the reason
    /// of any assigned variable.
    fn remove_marked(&mut self) {
        // Drop the watch entries of marked clauses.
        {
            let arena = &self.arena;
            for list in &mut self.watches {
                list.retain(|w| w.cref & WATCH_BINARY != 0 || !arena.is_marked(w.cref));
            }
        }
        // Compact the arena, leaving a forwarding pointer (the activity word)
        // at each surviving clause's old location.
        let mut new_data = Vec::with_capacity(self.arena.data.len());
        for list in [&mut self.clauses, &mut self.learnts] {
            list.retain(|&c| !self.arena.is_marked(c));
            for cref in list.iter_mut() {
                let start = *cref as usize;
                let total = HEADER_WORDS + self.arena.len(*cref);
                let new_cref = u32::try_from(new_data.len()).expect("arena offset fits in u32");
                new_data.extend_from_slice(&self.arena.data[start..start + total]);
                self.arena.data[start + 1] = new_cref;
                *cref = new_cref;
            }
        }
        let old = std::mem::replace(&mut self.arena.data, new_data);
        for list in &mut self.watches {
            for w in &mut *list {
                if w.cref & WATCH_BINARY == 0 {
                    w.cref = old[w.cref as usize + 1];
                }
            }
        }
        for reason in &mut self.reason {
            if let Reason::Clause(cref) = reason {
                *cref = old[*cref as usize + 1];
            }
        }
    }

    /// Removes every clause — original or learnt — that mentions a variable
    /// with index ≥ `first.index()`, retires those variables from the
    /// decision heap, unwinds their top-level facts, and clears an
    /// unsatisfiable verdict the removed clauses were responsible for.
    ///
    /// # Soundness contract
    ///
    /// The removed variables must be *var-disjoint* from the surviving
    /// formula: every clause that ever mentioned one of them is being
    /// removed here (true for the learner's per-count encoding blocks,
    /// which share no variables). Under that guarantee every surviving
    /// learnt clause and top-level fact was derived from surviving original
    /// clauses alone, so dropping the block — and an `Unsat` verdict whose
    /// recorded witness variable lies inside it — leaves the solver exactly
    /// as if the block had never been added.
    ///
    /// This is what makes the learner's batched single-solver search viable:
    /// a refuted state count's block is hard-deleted from the arena and the
    /// watch lists on count advance, instead of being dragged along behind an
    /// activation literal that taxes every later propagation.
    pub fn remove_vars_from(&mut self, first: Var) {
        let cut = first.index();
        assert!(cut <= self.num_vars, "variable out of range");
        self.backjump(0);
        for v in cut..self.num_vars {
            self.decision[v] = false;
        }
        // Unwind the top-level trail: facts over removed variables go (their
        // derivations die with the block); facts over surviving variables
        // were derived from surviving clauses alone and are kept. Top-level
        // facts need no reasons (analysis never resolves level-0 literals).
        for v in 0..self.num_vars {
            if self.assign[v].is_some() {
                self.reason[v] = Reason::None;
            }
        }
        self.trail.retain(|lit| {
            let v = lit.var().index();
            if v >= cut {
                self.assign[v] = None;
                false
            } else {
                true
            }
        });
        self.qhead = 0;
        // Mark every arena clause mentioning a removed variable.
        let mut removed_learnts = 0usize;
        {
            let arena = &mut self.arena;
            for (is_learnt, list) in [(false, &self.clauses), (true, &self.learnts)] {
                for &cref in list.iter() {
                    let len = arena.len(cref);
                    if (0..len).any(|k| arena.lit(cref, k).var().index() >= cut) {
                        arena.mark(cref);
                        removed_learnts += usize::from(is_learnt);
                    }
                }
            }
        }
        // Drop specialised binary clauses mentioning a removed variable.
        let mut removed_binary_learnt_entries = 0usize;
        for (code, list) in self.watches.iter_mut().enumerate() {
            let watched = Lit::from_code(code);
            list.retain(|w| {
                if w.cref & WATCH_BINARY == 0 {
                    return true;
                }
                let retired = watched.var().index() >= cut || w.blocker.var().index() >= cut;
                if retired && w.cref & WATCH_BINARY_LEARNT != 0 {
                    removed_binary_learnt_entries += 1;
                }
                !retired
            });
        }
        debug_assert_eq!(
            removed_binary_learnt_entries % 2,
            0,
            "binary watches pair up"
        );
        self.live_learnts -= removed_learnts + removed_binary_learnt_entries / 2;
        self.remove_marked();
        // Rebuild the decision heap canonically (live unassigned decision
        // variables in index order): pops of the removed block's variables
        // scrambled the heap's zero-activity ordering, and variable blocks
        // loaded afterwards would inherit that scramble — observably worse
        // decision order than a fresh solver's, since the encoder lays out
        // its most constraining variables first. The activity increments
        // reset with it, so the next block's VSIDS dynamics start exactly
        // like a fresh solver's instead of at the old block's scale.
        for a in &mut self.activity {
            *a = 0.0;
        }
        self.heap = VarHeap::new(self.num_vars);
        for v in 0..self.num_vars {
            if self.decision[v] && self.assign[v].is_none() {
                self.heap.insert(v, &self.activity);
            }
        }
        self.var_inc = 1.0;
        self.cla_inc = 1.0;
        // A refutation whose witness variable lived in the removed block is
        // void now; one recorded as block-independent stays.
        if !self.ok {
            if let Some(witness) = self.unsat_witness {
                if witness >= cut {
                    self.ok = true;
                    self.unsat_witness = None;
                }
            }
        }
    }

    /// Removes every clause that is satisfied at the top level — including
    /// specialised binary clauses — and compacts the arena. Top-level facts
    /// lose their reason clauses first (conflict analysis never resolves
    /// level-0 literals, so reasons of top-level assignments are dead
    /// weight that would otherwise pin their clauses).
    ///
    /// This is what makes retiring a batched-assumptions activation literal
    /// cheap: after `add_clause([¬gate])`, one `simplify` call hard-deletes
    /// every clause the gate guarded from the arena and the watch lists, so
    /// later propagation never wades through them again.
    pub fn simplify(&mut self) {
        if !self.ok {
            return;
        }
        self.backjump(0);
        if let Some(conflict) = self.propagate() {
            self.ok = false;
            self.unsat_witness = Some(self.conflict_lit(conflict, 0).var().index());
            return;
        }
        for v in 0..self.num_vars {
            if self.assign[v].is_some() {
                self.reason[v] = Reason::None;
            }
        }
        // Mark satisfied arena clauses.
        let mut marked = 0usize;
        let mut marked_learnts = 0usize;
        {
            let assign = &self.assign;
            let arena = &mut self.arena;
            let value = |lit: Lit| assign[lit.var().index()].map(|v| v == lit.is_positive());
            for list in [&self.clauses, &self.learnts] {
                for &cref in list.iter() {
                    let len = arena.len(cref);
                    if (0..len).any(|k| value(arena.lit(cref, k)) == Some(true)) {
                        arena.mark(cref);
                        marked += 1;
                        marked_learnts += usize::from(arena.is_learnt(cref));
                    }
                }
            }
        }
        // Drop satisfied specialised binary clauses: the entry in
        // `watches[l]` stands for the clause `[blocker, ¬l]`.
        let mut removed_binary_learnt_entries = 0usize;
        let mut removed_binary_entries = 0usize;
        {
            let assign = &self.assign;
            let value = |lit: Lit| assign[lit.var().index()].map(|v| v == lit.is_positive());
            for (code, list) in self.watches.iter_mut().enumerate() {
                let watched = Lit::from_code(code);
                let other = !watched;
                list.retain(|w| {
                    if w.cref & WATCH_BINARY == 0 {
                        return true;
                    }
                    let satisfied = value(w.blocker) == Some(true) || value(other) == Some(true);
                    if satisfied {
                        removed_binary_entries += 1;
                        if w.cref & WATCH_BINARY_LEARNT != 0 {
                            removed_binary_learnt_entries += 1;
                        }
                    }
                    !satisfied
                });
            }
        }
        debug_assert_eq!(removed_binary_entries % 2, 0, "binary watches pair up");
        debug_assert_eq!(
            removed_binary_learnt_entries % 2,
            0,
            "binary watches pair up"
        );
        self.live_learnts -= marked_learnts + removed_binary_learnt_entries / 2;
        if marked > 0 {
            self.remove_marked();
        }
    }

    /// Solves the formula to completion.
    pub fn solve(&mut self) -> SatResult {
        self.solve_with_limits(Limits::unlimited())
    }

    /// Solves the formula, giving up with [`SatResult::Unknown`] when the
    /// per-call budget in `limits` is exhausted.
    pub fn solve_with_limits(&mut self, limits: Limits) -> SatResult {
        self.solve_with_assumptions(&[], limits)
    }

    /// Solves the formula under temporary unit `assumptions`.
    ///
    /// Assumptions act as forced first decisions: a `Sat` answer satisfies
    /// all of them, while `Unsat` means the formula has no model in which
    /// every assumption holds. In the latter case
    /// [`Solver::failed_assumptions`] returns the subset of assumptions the
    /// refutation actually used. Assumptions do not persist: the solver can
    /// be reused afterwards with different (or no) assumptions, and learnt
    /// clauses derived under assumptions remain valid because conflict
    /// analysis never resolves on decision literals.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit], limits: Limits) -> SatResult {
        let entry = self.stats;
        self.stats.solve_calls += 1;
        #[cfg(feature = "fault-injection")]
        {
            use tracelearn_faults::{trip, FaultSite};
            // Advance both occurrence counters every call so a plan firing on
            // the nth solve stays deterministic regardless of which site is
            // armed. Either fault surfaces exactly like the genuine path:
            // `Unknown`, which callers map to budget exhaustion.
            let budget = trip(FaultSite::SatBudget);
            let interrupt = trip(FaultSite::SatInterrupt);
            if budget || interrupt {
                self.failed.clear();
                self.last_call = self.stats.since(&entry);
                return SatResult::Unknown;
            }
        }
        self.failed.clear();
        for lit in assumptions {
            assert!(
                lit.var().index() < self.num_vars,
                "assumption literal out of range"
            );
        }
        if self.learnt_limit == 0 {
            self.learnt_limit = (self.clauses.len() / 3).max(2000);
        }
        self.prop_limit = limits
            .max_propagations
            .map(|max| entry.propagations.saturating_add(max));
        self.prop_budget_hit = false;
        let result = self.search(assumptions, limits, &entry);
        self.prop_limit = None;
        self.last_call = self.stats.since(&entry);
        result
    }

    fn search(&mut self, assumptions: &[Lit], limits: Limits, entry: &SolverStats) -> SatResult {
        if !self.ok {
            return SatResult::Unsat;
        }
        self.backjump(0);
        if let Some(conflict) = self.propagate() {
            self.ok = false;
            self.unsat_witness = Some(self.conflict_lit(conflict, 0).var().index());
            return SatResult::Unsat;
        }
        if self.prop_budget_hit {
            return self.give_up_on_propagations();
        }
        if self.live_learnts >= self.learnt_limit {
            self.reduce_db();
        }

        // The Luby restart schedule is per call (as in MiniSat): a reused
        // solver starts each query with short restarts again instead of
        // inheriting the long intervals its history grew into.
        let mut call_restarts = 0u64;
        let mut conflicts_since_restart = 0u64;
        let mut restart_limit = 100u64 * luby(call_restarts + 1);

        loop {
            if let Some(max) = limits.max_conflicts {
                if self.stats.conflicts - entry.conflicts >= max {
                    self.backjump(0);
                    return SatResult::Unknown;
                }
            }
            if self.is_interrupted() {
                self.backjump(0);
                return SatResult::Unknown;
            }

            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                if self.current_level() == 0 {
                    self.ok = false;
                    self.unsat_witness = Some(self.conflict_lit(conflict, 0).var().index());
                    return SatResult::Unsat;
                }
                let (learnt, backtrack_level, lbd) = self.analyze(conflict);
                self.backjump(backtrack_level);
                self.stats.record_lbd(lbd);
                match learnt.len() {
                    1 => {
                        let enqueued = self.enqueue(learnt[0], Reason::None);
                        debug_assert!(enqueued);
                    }
                    2 => {
                        self.attach_binary(learnt[0], learnt[1], true);
                        self.stats.learnt_clauses += 1;
                        let enqueued = self.enqueue(learnt[0], Reason::Binary(learnt[1]));
                        debug_assert!(enqueued);
                    }
                    _ => {
                        let asserting = learnt[0];
                        let cref = self.attach(&learnt, true);
                        self.arena.set_lbd(cref, lbd);
                        self.stats.learnt_clauses += 1;
                        let enqueued = self.enqueue(asserting, Reason::Clause(cref));
                        debug_assert!(enqueued);
                    }
                }
                self.var_inc /= 0.95;
                self.cla_inc /= 0.999;
            } else {
                if self.prop_budget_hit {
                    return self.give_up_on_propagations();
                }
                if conflicts_since_restart >= restart_limit {
                    self.stats.restarts += 1;
                    call_restarts += 1;
                    conflicts_since_restart = 0;
                    restart_limit = 100 * luby(call_restarts + 1);
                    self.backjump(0);
                    if self.live_learnts >= self.learnt_limit {
                        self.reduce_db();
                    }
                    continue;
                }
                // Establish the next assumption as a pseudo-decision: level
                // `i + 1` always belongs to `assumptions[i]`.
                let next = self.current_level() as usize;
                if next < assumptions.len() {
                    let p = assumptions[next];
                    match self.lit_value(p) {
                        Some(true) => {
                            // Already implied: open an empty level for it so
                            // the level↔assumption correspondence holds.
                            self.trail_lim.push(self.trail.len());
                        }
                        Some(false) => {
                            self.failed = self.analyze_final(p);
                            self.backjump(0);
                            return SatResult::Unsat;
                        }
                        None => {
                            self.trail_lim.push(self.trail.len());
                            let enqueued = self.enqueue(p, Reason::None);
                            debug_assert!(enqueued);
                        }
                    }
                    continue;
                }
                if !self.decide() {
                    // All variables assigned: build the model.
                    let values = self
                        .assign
                        .iter()
                        .map(|v| v.unwrap_or(false))
                        .collect::<Vec<_>>();
                    let model = Model::new(values);
                    self.backjump(0);
                    return SatResult::Sat(model);
                }
            }
        }
    }

    /// Abandons the current call after the propagation budget was hit inside
    /// [`Solver::propagate`]. The propagation queue may be partially drained,
    /// so the next call re-propagates the top-level trail from scratch.
    fn give_up_on_propagations(&mut self) -> SatResult {
        self.backjump(0);
        self.qhead = 0;
        SatResult::Unknown
    }
}

/// The Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, …
fn luby(mut i: u64) -> u64 {
    // Find the finite subsequence containing index i and its size.
    let mut k = 1u32;
    while (1u64 << k) - 1 < i {
        k += 1;
    }
    loop {
        if (1u64 << (k - 1)) - 1 == i {
            return 1u64 << (k - 1);
        }
        if i == 0 {
            return 1;
        }
        if (1u64 << k) - 1 == i {
            return 1u64 << (k - 1);
        }
        i -= (1u64 << (k - 1)) - 1;
        k = 1;
        while (1u64 << k) - 1 < i {
            k += 1;
        }
    }
}

/// An indexed binary max-heap over variables, ordered by activity.
#[derive(Debug, Clone)]
struct VarHeap {
    heap: Vec<usize>,
    position: Vec<Option<usize>>,
}

impl VarHeap {
    fn new(num_vars: usize) -> Self {
        VarHeap {
            heap: Vec::with_capacity(num_vars),
            position: vec![None; num_vars],
        }
    }

    /// Makes room for one more variable (see [`Solver::new_var`]).
    fn grow(&mut self) {
        self.position.push(None);
    }

    fn contains(&self, var: usize) -> bool {
        self.position[var].is_some()
    }

    fn insert(&mut self, var: usize, activity: &[f64]) {
        if self.contains(var) {
            return;
        }
        self.position[var] = Some(self.heap.len());
        self.heap.push(var);
        self.sift_up(self.heap.len() - 1, activity);
    }

    fn update(&mut self, var: usize, activity: &[f64]) {
        if let Some(pos) = self.position[var] {
            self.sift_up(pos, activity);
        }
    }

    fn pop(&mut self, activity: &[f64]) -> Option<usize> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.position[top] = None;
        let last = self.heap.pop().expect("heap non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.position[last] = Some(0);
            self.sift_down(0, activity);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut pos: usize, activity: &[f64]) {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if activity[self.heap[pos]] > activity[self.heap[parent]] {
                self.swap(pos, parent);
                pos = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut pos: usize, activity: &[f64]) {
        loop {
            let left = 2 * pos + 1;
            let right = 2 * pos + 2;
            let mut largest = pos;
            if left < self.heap.len() && activity[self.heap[left]] > activity[self.heap[largest]] {
                largest = left;
            }
            if right < self.heap.len() && activity[self.heap[right]] > activity[self.heap[largest]]
            {
                largest = right;
            }
            if largest == pos {
                break;
            }
            self.swap(pos, largest);
            pos = largest;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.position[self.heap[a]] = Some(a);
        self.position[self.heap[b]] = Some(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: usize, positive: bool) -> Lit {
        Lit::new(Var::new(v as u32), positive)
    }

    /// Brute-force satisfiability check for cross-validation.
    fn brute_force_sat(num_vars: usize, clauses: &[Vec<Lit>]) -> bool {
        assert!(num_vars <= 20, "brute force only for small formulas");
        'outer: for assignment in 0u32..(1 << num_vars) {
            for clause in clauses {
                let satisfied = clause.iter().any(|l| {
                    let bit = (assignment >> l.var().index()) & 1 == 1;
                    bit == l.is_positive()
                });
                if !satisfied {
                    continue 'outer;
                }
            }
            return true;
        }
        false
    }

    fn solve_clauses(num_vars: usize, clauses: &[Vec<Lit>]) -> SatResult {
        let mut solver = Solver::new(num_vars);
        for clause in clauses {
            solver.add_clause(clause.iter().copied());
        }
        solver.solve()
    }

    fn pigeonhole_clauses(pigeons: usize, holes: usize) -> (usize, Vec<Vec<Lit>>) {
        let var = |pigeon: usize, hole: usize| lit(pigeon * holes + hole, true);
        let mut clauses = Vec::new();
        for p in 0..pigeons {
            clauses.push((0..holes).map(|h| var(p, h)).collect::<Vec<_>>());
        }
        for h in 0..holes {
            for a in 0..pigeons {
                for b in (a + 1)..pigeons {
                    clauses.push(vec![!var(a, h), !var(b, h)]);
                }
            }
        }
        (pigeons * holes, clauses)
    }

    /// Snapshot of every learnt clause currently attached: arena learnts plus
    /// the specialised binary learnts reconstructed from the watch lists.
    fn learnt_clauses(solver: &Solver) -> Vec<Vec<Lit>> {
        let mut out = Vec::new();
        for &cref in &solver.learnts {
            out.push(
                (0..solver.arena.len(cref))
                    .map(|k| solver.arena.lit(cref, k))
                    .collect(),
            );
        }
        for (code, list) in solver.watches.iter().enumerate() {
            let watched = Lit::from_code(code);
            for w in list {
                if w.cref & WATCH_BINARY != 0 && w.cref & WATCH_BINARY_LEARNT != 0 {
                    // Each binary clause has two entries; keep one canonically.
                    if w.blocker.code() < (!watched).code() {
                        out.push(vec![w.blocker, !watched]);
                    }
                }
            }
        }
        out
    }

    #[test]
    fn empty_formula_is_sat() {
        assert!(solve_clauses(3, &[]).is_sat());
    }

    #[test]
    fn unit_clauses_propagate() {
        let clauses = vec![vec![lit(0, true)], vec![lit(0, false), lit(1, true)]];
        match solve_clauses(2, &clauses) {
            SatResult::Sat(model) => {
                assert!(model.value(Var::new(0)));
                assert!(model.value(Var::new(1)));
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn contradictory_units_are_unsat() {
        let clauses = vec![vec![lit(0, true)], vec![lit(0, false)]];
        assert!(solve_clauses(1, &clauses).is_unsat());
    }

    #[test]
    fn pigeonhole_three_into_two_is_unsat() {
        let (num_vars, clauses) = pigeonhole_clauses(3, 2);
        assert!(solve_clauses(num_vars, &clauses).is_unsat());
    }

    #[test]
    fn simple_backtracking_formula() {
        // (a ∨ b) ∧ (¬a ∨ c) ∧ (¬b ∨ c) ∧ (¬c ∨ d) ∧ (¬d ∨ ¬a)
        let clauses = vec![
            vec![lit(0, true), lit(1, true)],
            vec![lit(0, false), lit(2, true)],
            vec![lit(1, false), lit(2, true)],
            vec![lit(2, false), lit(3, true)],
            vec![lit(3, false), lit(0, false)],
        ];
        match solve_clauses(4, &clauses) {
            SatResult::Sat(model) => {
                assert!(model.satisfies(&clauses));
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn model_always_satisfies_formula() {
        let clauses = vec![
            vec![lit(0, true), lit(1, false), lit(2, true)],
            vec![lit(1, true), lit(2, false)],
            vec![lit(0, false), lit(3, true)],
            vec![lit(3, false), lit(4, true), lit(1, true)],
            vec![lit(4, false), lit(0, true)],
        ];
        match solve_clauses(5, &clauses) {
            SatResult::Sat(model) => assert!(model.satisfies(&clauses)),
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn tautological_clauses_are_ignored() {
        let clauses = vec![vec![lit(0, true), lit(0, false)], vec![lit(1, true)]];
        assert!(solve_clauses(2, &clauses).is_sat());
    }

    #[test]
    fn limits_return_unknown() {
        // A hard pigeonhole instance with a tiny conflict budget.
        let (num_vars, clauses) = pigeonhole_clauses(6, 5);
        let mut solver = Solver::new(num_vars);
        for clause in &clauses {
            solver.add_clause(clause.iter().copied());
        }
        let result = solver.solve_with_limits(Limits::conflicts(3));
        assert_eq!(result, SatResult::Unknown);
        // And without limits the instance is UNSAT.
        let mut solver = Solver::new(num_vars);
        for clause in &clauses {
            solver.add_clause(clause.iter().copied());
        }
        assert!(solver.solve().is_unsat());
        assert!(solver.stats().conflicts > 0);
    }

    /// Regression test for cumulative-budget accounting: a second call on a
    /// reused solver must get its own conflict budget instead of being
    /// charged for the lifetime total.
    #[test]
    fn limits_are_per_call_on_a_reused_solver() {
        // Pigeonhole 6-into-5 with a relaxation literal r added to every
        // capacity clause: under the assumption ¬r the instance is the hard
        // UNSAT pigeonhole (burning many conflicts), without assumptions it
        // is trivially SAT by setting r.
        let (pigeons, holes) = (6usize, 5usize);
        let var = |pigeon: usize, hole: usize| lit(pigeon * holes + hole, true);
        let relax = lit(pigeons * holes, true);
        let mut solver = Solver::new(pigeons * holes + 1);
        for p in 0..pigeons {
            solver.add_clause((0..holes).map(|h| var(p, h)));
        }
        for h in 0..holes {
            for a in 0..pigeons {
                for b in (a + 1)..pigeons {
                    solver.add_clause([!var(a, h), !var(b, h), relax]);
                }
            }
        }
        let first = solver.solve_with_assumptions(&[!relax], Limits::unlimited());
        assert!(first.is_unsat());
        let lifetime_conflicts = solver.stats().conflicts;
        assert!(
            lifetime_conflicts >= 1,
            "the refutation must cost conflicts"
        );

        // Second call with a conflict budget no larger than the lifetime
        // total: under the old cumulative accounting this returned Unknown
        // immediately even though the call itself did no work yet.
        let result = solver.solve_with_limits(Limits::conflicts(lifetime_conflicts));
        assert!(
            result.is_sat(),
            "second call spuriously hit a budget it never consumed: {result:?}"
        );
        assert_eq!(solver.last_call_stats().solve_calls, 1);
        assert!(solver.last_call_stats().conflicts <= lifetime_conflicts);
    }

    #[test]
    fn propagation_budget_is_enforced_inside_propagate() {
        // A long implication chain: one decision triggers ~n propagations in
        // a single propagate() pass.
        let n = 8192;
        let mut solver = Solver::new(n);
        // x_{i+1} → x_i: the first decision (¬x0, phases default to false)
        // collapses the whole chain in one propagate() pass.
        for i in 0..(n - 1) {
            solver.add_clause([lit(i, true), lit(i + 1, false)]);
        }
        let result = solver.solve_with_limits(Limits::propagations(2048));
        assert_eq!(
            result,
            SatResult::Unknown,
            "a single propagation pass must respect the budget"
        );
        // The overshoot is bounded by the 1024-step check granularity.
        assert!(solver.last_call_stats().propagations <= 2048 + 1024);
        // The same solver still answers correctly without limits.
        assert!(solver.solve().is_sat());
    }

    #[test]
    fn new_var_grows_a_live_solver() {
        let mut solver = Solver::new(1);
        solver.add_clause([lit(0, true)]);
        assert!(solver.solve().is_sat());
        let v = solver.new_var();
        assert_eq!(solver.num_vars(), 2);
        solver.add_clause([Lit::negative(v)]);
        match solver.solve() {
            SatResult::Sat(model) => {
                assert!(model.value(Var::new(0)));
                assert!(!model.value(v));
            }
            other => panic!("expected SAT, got {other:?}"),
        }
        solver.add_clause([Lit::positive(v)]);
        assert!(solver.solve().is_unsat());
    }

    #[test]
    fn assumptions_are_temporary() {
        // (a ∨ b) with assumption ¬a forces b; without assumptions a is free.
        let mut solver = Solver::new(2);
        solver.add_clause([lit(0, true), lit(1, true)]);
        match solver.solve_with_assumptions(&[lit(0, false)], Limits::unlimited()) {
            SatResult::Sat(model) => {
                assert!(!model.value(Var::new(0)));
                assert!(model.value(Var::new(1)));
            }
            other => panic!("expected SAT, got {other:?}"),
        }
        // The assumption must not have been burned in.
        match solver.solve_with_assumptions(&[lit(0, true), lit(1, false)], Limits::unlimited()) {
            SatResult::Sat(model) => {
                assert!(model.value(Var::new(0)));
                assert!(!model.value(Var::new(1)));
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn failed_assumptions_name_the_culprits() {
        // a → b, b → c; assuming a and ¬c is contradictory, assuming d is not.
        let mut solver = Solver::new(4);
        solver.add_clause([lit(0, false), lit(1, true)]);
        solver.add_clause([lit(1, false), lit(2, true)]);
        let assumptions = [lit(3, true), lit(0, true), lit(2, false)];
        let result = solver.solve_with_assumptions(&assumptions, Limits::unlimited());
        assert!(result.is_unsat());
        let failed = solver.failed_assumptions().to_vec();
        assert!(!failed.is_empty());
        // Every reported literal is one of the assumptions…
        for l in &failed {
            assert!(assumptions.contains(l), "{l} is not an assumption");
        }
        // …and the irrelevant assumption d is not blamed.
        assert!(!failed.contains(&lit(3, true)));
        // The sub-formula remains satisfiable without assumptions.
        assert!(solver.solve().is_sat());
    }

    #[test]
    fn unsat_without_assumptions_reports_no_failed_set() {
        let mut solver = Solver::new(1);
        solver.add_clause([lit(0, true)]);
        solver.add_clause([lit(0, false)]);
        let result = solver.solve_with_assumptions(&[], Limits::unlimited());
        assert!(result.is_unsat());
        assert!(solver.failed_assumptions().is_empty());
    }

    #[test]
    fn assumption_false_at_top_level_fails_alone() {
        let mut solver = Solver::new(2);
        solver.add_clause([lit(0, false)]);
        let result =
            solver.solve_with_assumptions(&[lit(1, true), lit(0, true)], Limits::unlimited());
        assert!(result.is_unsat());
        assert_eq!(solver.failed_assumptions(), &[lit(0, true)]);
    }

    #[test]
    fn learnt_database_reduction_keeps_answers_correct() {
        let (num_vars, clauses) = pigeonhole_clauses(8, 7);
        let mut solver = Solver::new(num_vars);
        for clause in &clauses {
            solver.add_clause(clause.iter().copied());
        }
        solver.set_learnt_limit(50);
        assert!(solver.solve().is_unsat());
        let stats = solver.stats();
        assert!(stats.db_reductions > 0, "no reduction triggered: {stats:?}");
        assert!(stats.removed_learnts > 0);
    }

    #[test]
    fn incremental_solving_reuses_learnt_clauses() {
        let (num_vars, clauses) = pigeonhole_clauses(7, 7);
        let mut solver = Solver::new(num_vars);
        for clause in &clauses {
            solver.add_clause(clause.iter().copied());
        }
        assert!(solver.solve().is_sat());
        let learnts = solver.num_learnts();
        // Strengthen the formula and solve again on the same solver.
        solver.add_clause([lit(0, false)]);
        assert!(solver.solve().is_sat());
        assert!(
            solver.num_learnts() >= learnts,
            "learnt clauses must be carried across calls"
        );
        assert_eq!(solver.stats().solve_calls, 2);
    }

    #[test]
    fn interrupt_raised_before_solving_returns_unknown() {
        let (num_vars, clauses) = pigeonhole_clauses(6, 5);
        let mut solver = Solver::new(num_vars);
        for clause in &clauses {
            solver.add_clause(clause.iter().copied());
        }
        let flag = Arc::new(AtomicBool::new(true));
        solver.set_interrupt(Arc::clone(&flag));
        assert!(solver.is_interrupted());
        assert_eq!(solver.solve(), SatResult::Unknown);
        // Lowering the flag restores full functionality on the same solver.
        flag.store(false, Ordering::Relaxed);
        assert!(!solver.is_interrupted());
        assert!(solver.solve().is_unsat());
    }

    #[test]
    fn interrupt_from_another_thread_stops_a_long_solve_promptly() {
        // Pigeonhole 10-into-9 takes far longer than the test budget; the
        // interrupt must cut the solve short from a concurrent thread.
        let (num_vars, clauses) = pigeonhole_clauses(10, 9);
        let mut solver = Solver::new(num_vars);
        for clause in &clauses {
            solver.add_clause(clause.iter().copied());
        }
        let flag = Arc::new(AtomicBool::new(false));
        solver.set_interrupt(Arc::clone(&flag));
        let result = std::thread::scope(|scope| {
            scope.spawn(|| {
                std::thread::sleep(std::time::Duration::from_millis(50));
                flag.store(true, Ordering::Relaxed);
            });
            let start = std::time::Instant::now();
            let result = solver.solve();
            assert!(
                start.elapsed() < std::time::Duration::from_secs(20),
                "interrupt was not honoured promptly"
            );
            result
        });
        assert_eq!(result, SatResult::Unknown);
        // The interrupted solver answers a small query once cleared.
        solver.clear_interrupt();
        assert!(!solver.is_interrupted());
        let mut small = Solver::new(1);
        small.add_clause([lit(0, true)]);
        assert!(small.solve().is_sat());
    }

    #[test]
    fn luby_sequence_prefix() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let actual: Vec<u64> = (1..=15).map(luby).collect();
        assert_eq!(actual, expected);
    }

    #[test]
    fn agrees_with_brute_force_on_fixed_formulas() {
        let formulas: Vec<(usize, Vec<Vec<Lit>>)> = vec![
            (
                3,
                vec![vec![lit(0, true)], vec![lit(1, true), lit(2, false)]],
            ),
            (
                3,
                vec![
                    vec![lit(0, true), lit(1, true)],
                    vec![lit(0, false), lit(1, false)],
                    vec![lit(1, true), lit(2, true)],
                    vec![lit(1, false), lit(2, false)],
                    vec![lit(0, true), lit(2, true)],
                    vec![lit(0, false), lit(2, false)],
                ],
            ),
        ];
        for (num_vars, clauses) in formulas {
            let expected = brute_force_sat(num_vars, &clauses);
            let actual = solve_clauses(num_vars, &clauses).is_sat();
            assert_eq!(actual, expected);
        }
    }

    /// New in this PR — (a) of the solver test checklist: every learnt
    /// clause surviving conflict-clause minimization must still be implied
    /// by the original formula (asserting its negation yields UNSAT).
    #[test]
    fn minimized_learnt_clauses_are_implied_by_the_formula() {
        let (num_vars, clauses) = pigeonhole_clauses(6, 5);
        let mut solver = Solver::new(num_vars);
        for clause in &clauses {
            solver.add_clause(clause.iter().copied());
        }
        // Budget the refutation so a learnt database is left standing.
        let _ = solver.solve_with_limits(Limits::conflicts(120));
        let learnts = learnt_clauses(&solver);
        assert!(!learnts.is_empty(), "the run must learn clauses");
        assert!(
            solver.stats().minimized_literals > 0,
            "pigeonhole conflicts must trigger minimization"
        );
        for learnt in learnts.iter().take(60) {
            let mut check = Solver::new(num_vars);
            for clause in &clauses {
                check.add_clause(clause.iter().copied());
            }
            for &l in learnt {
                check.add_clause([!l]);
            }
            assert!(
                check.solve().is_unsat(),
                "learnt clause {learnt:?} is not implied"
            );
        }
    }

    /// New in this PR — (b): the arena layout survives `new_var` and
    /// `add_clause` growth after solving (and after database reductions
    /// compacted the arena).
    #[test]
    fn arena_survives_growth_after_solving_and_reduction() {
        let (num_vars, clauses) = pigeonhole_clauses(7, 7);
        let mut solver = Solver::new(num_vars);
        for clause in &clauses {
            solver.add_clause(clause.iter().copied());
        }
        solver.set_learnt_limit(20);
        assert!(solver.solve().is_sat());
        // Grow the formula: a fresh variable bridging old clauses.
        let v = solver.new_var();
        solver.add_clause([Lit::positive(v), lit(0, true), lit(1, true)]);
        solver.add_clause([Lit::negative(v), lit(2, true)]);
        assert!(solver.solve().is_sat());
        // Force the pigeonhole to be re-derived after the growth.
        solver.add_clause([lit(0, false)]);
        assert!(solver.solve().is_sat());
        // Arena bookkeeping is intact: every stored clause reads back with a
        // sane length and in-range literals.
        for &cref in solver.clauses.iter().chain(solver.learnts.iter()) {
            let len = solver.arena.len(cref);
            assert!(len >= 3, "arena clauses are at least ternary");
            for k in 0..len {
                assert!(solver.arena.lit(cref, k).var().index() < solver.num_vars());
            }
        }
    }

    /// New in this PR — (d): LBD-first reduction never evicts glue ≤ 2
    /// clauses.
    #[test]
    fn lbd_first_reduction_protects_low_glue_clauses() {
        let (num_vars, clauses) = pigeonhole_clauses(9, 8);
        let mut solver = Solver::new(num_vars);
        for clause in &clauses {
            solver.add_clause(clause.iter().copied());
        }
        // Burn conflicts without finishing so a big database accumulates.
        let _ = solver.solve_with_limits(Limits::conflicts(800));
        let glue_low: Vec<Vec<Lit>> = solver
            .learnts
            .iter()
            .filter(|&&c| solver.arena.lbd(c) <= 2)
            .map(|&c| {
                (0..solver.arena.len(c))
                    .map(|k| solver.arena.lit(c, k))
                    .collect()
            })
            .collect();
        let before = solver.learnts.len();
        solver.backjump(0);
        solver.reduce_db();
        assert!(
            solver.learnts.len() < before,
            "the reduction must evict something"
        );
        let survivors: std::collections::BTreeSet<Vec<Lit>> = solver
            .learnts
            .iter()
            .map(|&c| {
                let mut lits: Vec<Lit> = (0..solver.arena.len(c))
                    .map(|k| solver.arena.lit(c, k))
                    .collect();
                lits.sort();
                lits
            })
            .collect();
        for clause in glue_low {
            let mut sorted = clause.clone();
            sorted.sort();
            assert!(
                survivors.contains(&sorted),
                "glue ≤ 2 clause {clause:?} was evicted"
            );
        }
        // The reduced solver still refutes the instance.
        assert!(solver.solve().is_unsat());
    }

    #[test]
    fn lbd_histogram_accounts_for_every_learnt_clause() {
        let (num_vars, clauses) = pigeonhole_clauses(7, 6);
        let mut solver = Solver::new(num_vars);
        for clause in &clauses {
            solver.add_clause(clause.iter().copied());
        }
        assert!(solver.solve().is_unsat());
        let stats = solver.stats();
        let histogram_total: u64 = stats.lbd_histogram.iter().sum();
        // Every analyzed conflict records its glue (unit learnts included);
        // only the terminal level-0 conflict returns without analysis.
        assert!(histogram_total >= stats.learnt_clauses);
        assert!(stats.conflicts - histogram_total <= 1);
        assert!(stats.lbd_histogram[0] + stats.lbd_histogram[1] > 0);
        assert_eq!(solver.last_call_stats().lbd_histogram, stats.lbd_histogram);
    }

    #[test]
    fn simplify_hard_deletes_satisfied_clauses() {
        let mut solver = Solver::new(4);
        let gate = lit(3, true);
        solver.add_clause([lit(0, true), lit(1, true), !gate]);
        solver.add_clause([lit(1, false), lit(2, true), !gate]);
        solver.add_clause([lit(0, false), !gate]); // specialised binary
        assert_eq!(solver.clauses.len(), 2);
        assert!(solver
            .solve_with_assumptions(&[gate], Limits::unlimited())
            .is_sat());
        // Retire the gate: every clause it guarded becomes satisfied…
        solver.add_clause([!gate]);
        solver.simplify();
        // …and is gone from the arena and the watch lists, not just inert.
        assert!(solver.clauses.is_empty());
        assert!(solver
            .watches
            .iter()
            .all(|list| list.iter().all(|w| w.cref & WATCH_BINARY == 0)));
        assert!(solver.solve().is_sat());
    }

    #[test]
    fn simplify_keeps_answers_on_a_relaxed_pigeonhole() {
        let (pigeons, holes) = (6usize, 5usize);
        let var = |pigeon: usize, hole: usize| lit(pigeon * holes + hole, true);
        let relax = lit(pigeons * holes, true);
        let mut solver = Solver::new(pigeons * holes + 1);
        for p in 0..pigeons {
            solver.add_clause((0..holes).map(|h| var(p, h)));
        }
        for h in 0..holes {
            for a in 0..pigeons {
                for b in (a + 1)..pigeons {
                    solver.add_clause([!var(a, h), !var(b, h), relax]);
                }
            }
        }
        assert!(solver
            .solve_with_assumptions(&[!relax], Limits::unlimited())
            .is_unsat());
        // Burn the relaxation in: the capacity clauses all become satisfied.
        solver.add_clause([relax]);
        solver.simplify();
        assert!(solver.solve().is_sat());
        // The pigeon clauses must have survived the compaction.
        solver.add_clause([!var(0, 0), !var(0, 1), !var(0, 2), !var(0, 3), !var(0, 4)]);
        match solver.solve() {
            SatResult::Sat(model) => {
                assert!((0..holes).any(|h| {
                    let l = var(1, h);
                    model.value(l.var())
                }));
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn retired_decision_variables_stay_out_of_the_search() {
        let mut solver = Solver::new(3);
        solver.add_clause([lit(0, true), lit(1, true)]);
        solver.set_decision(Var::new(2), false);
        match solver.solve() {
            SatResult::Sat(model) => assert!(!model.value(Var::new(2))),
            other => panic!("expected SAT, got {other:?}"),
        }
        // Re-enabling restores the variable to the search.
        solver.set_decision(Var::new(2), true);
        solver.add_clause([lit(2, true)]);
        match solver.solve() {
            SatResult::Sat(model) => assert!(model.value(Var::new(2))),
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        fn clause_strategy(num_vars: usize) -> impl Strategy<Value = Vec<Lit>> {
            proptest::collection::vec(
                (0..num_vars, proptest::bool::ANY).prop_map(|(v, s)| lit(v, s)),
                1..4,
            )
        }

        proptest! {
            /// On random small 3-CNF formulas the CDCL solver agrees with
            /// exhaustive enumeration, and SAT answers carry genuine models.
            #[test]
            fn cdcl_matches_brute_force(
                clauses in proptest::collection::vec(clause_strategy(8), 0..40)
            ) {
                let expected = brute_force_sat(8, &clauses);
                match solve_clauses(8, &clauses) {
                    SatResult::Sat(model) => {
                        prop_assert!(expected);
                        prop_assert!(model.satisfies(&clauses));
                    }
                    SatResult::Unsat => prop_assert!(!expected),
                    SatResult::Unknown => prop_assert!(false, "no limits were set"),
                }
            }

            /// Incremental solving (solve, add clauses, solve again on the
            /// same solver) agrees with a from-scratch solver on the combined
            /// formula — learnt-clause reuse must not change answers.
            #[test]
            fn incremental_agrees_with_from_scratch(
                base in proptest::collection::vec(clause_strategy(8), 0..25),
                extra in proptest::collection::vec(clause_strategy(8), 0..25)
            ) {
                let mut incremental = Solver::new(8);
                for clause in &base {
                    incremental.add_clause(clause.iter().copied());
                }
                let first = incremental.solve();
                prop_assert_eq!(first.is_sat(), brute_force_sat(8, &base));
                for clause in &extra {
                    incremental.add_clause(clause.iter().copied());
                }
                let second = incremental.solve();

                let mut combined: Vec<Vec<Lit>> = base.clone();
                combined.extend(extra.iter().cloned());
                let expected = brute_force_sat(8, &combined);
                match second {
                    SatResult::Sat(model) => {
                        prop_assert!(expected);
                        prop_assert!(model.satisfies(&combined));
                    }
                    SatResult::Unsat => prop_assert!(!expected),
                    SatResult::Unknown => prop_assert!(false, "no limits were set"),
                }
            }

            /// Interposing `simplify` between incremental calls must not
            /// change any answer: hard deletion of satisfied clauses and the
            /// arena compaction it triggers are invisible to correctness.
            #[test]
            fn simplify_between_calls_preserves_answers(
                base in proptest::collection::vec(clause_strategy(8), 0..25),
                extra in proptest::collection::vec(clause_strategy(8), 0..25)
            ) {
                let mut incremental = Solver::new(8);
                for clause in &base {
                    incremental.add_clause(clause.iter().copied());
                }
                let first = incremental.solve();
                prop_assert_eq!(first.is_sat(), brute_force_sat(8, &base));
                incremental.simplify();
                for clause in &extra {
                    incremental.add_clause(clause.iter().copied());
                }
                incremental.simplify();
                let second = incremental.solve();

                let mut combined: Vec<Vec<Lit>> = base.clone();
                combined.extend(extra.iter().cloned());
                let expected = brute_force_sat(8, &combined);
                match second {
                    SatResult::Sat(model) => {
                        prop_assert!(expected);
                        prop_assert!(model.satisfies(&combined));
                    }
                    SatResult::Unsat => prop_assert!(!expected),
                    SatResult::Unknown => prop_assert!(false, "no limits were set"),
                }
            }

            /// Solving under assumptions agrees with burning the assumptions
            /// in as unit clauses on a fresh solver.
            #[test]
            fn assumptions_agree_with_unit_clauses(
                clauses in proptest::collection::vec(clause_strategy(6), 0..20),
                assumed in proptest::collection::vec(
                    (0..6usize, proptest::bool::ANY).prop_map(|(v, s)| lit(v, s)), 0..3)
            ) {
                let mut solver = Solver::new(6);
                for clause in &clauses {
                    solver.add_clause(clause.iter().copied());
                }
                let under_assumptions = solver
                    .solve_with_assumptions(&assumed, Limits::unlimited())
                    .is_sat();

                let mut burned: Vec<Vec<Lit>> = clauses.clone();
                for &a in &assumed {
                    burned.push(vec![a]);
                }
                prop_assert_eq!(under_assumptions, brute_force_sat(6, &burned));
            }
        }
    }
}
