//! A conflict-driven clause-learning (CDCL) SAT solver.
//!
//! The implementation follows the classic MiniSat architecture:
//! two-watched-literal unit propagation, first-UIP conflict analysis with
//! clause learning and non-chronological backjumping, activity-ordered
//! (VSIDS) decision making with phase saving, and Luby-sequence restarts.

use crate::cnf::Cnf;
use crate::lit::{Lit, Var};
use crate::model::Model;

/// Resource limits for a single [`Solver::solve_with_limits`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Limits {
    /// Maximum number of conflicts before giving up with
    /// [`SatResult::Unknown`]. `None` means unlimited.
    pub max_conflicts: Option<u64>,
    /// Maximum number of unit propagations before giving up. `None` means
    /// unlimited.
    pub max_propagations: Option<u64>,
}

impl Limits {
    /// No limits: the solver runs to completion.
    pub fn unlimited() -> Self {
        Limits::default()
    }

    /// Limits the number of conflicts.
    pub fn conflicts(max_conflicts: u64) -> Self {
        Limits {
            max_conflicts: Some(max_conflicts),
            max_propagations: None,
        }
    }
}

/// Outcome of a solve call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatResult {
    /// The formula is satisfiable; a witnessing assignment is attached.
    Sat(Model),
    /// The formula is unsatisfiable.
    Unsat,
    /// The resource budget was exhausted before an answer was found.
    Unknown,
}

impl SatResult {
    /// Returns the model when satisfiable.
    pub fn model(self) -> Option<Model> {
        match self {
            SatResult::Sat(model) => Some(model),
            _ => None,
        }
    }

    /// Whether the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }

    /// Whether the result is `Unsat`.
    pub fn is_unsat(&self) -> bool {
        matches!(self, SatResult::Unsat)
    }
}

/// Counters describing the work performed by the solver.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of learnt clauses added.
    pub learnt_clauses: u64,
    /// Number of restarts performed.
    pub restarts: u64,
}

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
}

#[derive(Debug, Clone, Copy)]
struct Watch {
    clause: usize,
    blocker: Lit,
}

/// The CDCL solver. Construct it from a [`Cnf`] and call [`Solver::solve`].
#[derive(Debug, Clone)]
pub struct Solver {
    num_vars: usize,
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watch>>,
    assign: Vec<Option<bool>>,
    level: Vec<u32>,
    reason: Vec<Option<usize>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    phase: Vec<bool>,
    heap: VarHeap,
    seen: Vec<bool>,
    ok: bool,
    stats: SolverStats,
}

impl Solver {
    /// Creates a solver over `num_vars` variables with no clauses.
    pub fn new(num_vars: usize) -> Self {
        let mut heap = VarHeap::new(num_vars);
        let initial_activity = vec![0.0; num_vars];
        for v in 0..num_vars {
            heap.insert(v, &initial_activity);
        }
        Solver {
            num_vars,
            clauses: Vec::new(),
            watches: vec![Vec::new(); num_vars * 2],
            assign: vec![None; num_vars],
            level: vec![0; num_vars],
            reason: vec![None; num_vars],
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: vec![0.0; num_vars],
            var_inc: 1.0,
            phase: vec![false; num_vars],
            heap,
            seen: vec![false; num_vars],
            ok: true,
            stats: SolverStats::default(),
        }
    }

    /// Creates a solver and loads every clause of `cnf`.
    pub fn from_cnf(cnf: &Cnf) -> Self {
        let mut solver = Solver::new(cnf.num_vars());
        for clause in cnf.clauses() {
            solver.add_clause(clause.iter().copied());
        }
        solver
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Number of variables known to the solver.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    fn lit_value(&self, lit: Lit) -> Option<bool> {
        self.assign[lit.var().index()].map(|v| v == lit.is_positive())
    }

    fn current_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Adds a clause. Must be called before [`Solver::solve`]; clauses added
    /// after a solve call are still handled correctly because solving always
    /// restarts from decision level zero.
    ///
    /// # Panics
    ///
    /// Panics if a literal refers to a variable outside the solver's range.
    pub fn add_clause<I>(&mut self, lits: I)
    where
        I: IntoIterator<Item = Lit>,
    {
        if !self.ok {
            return;
        }
        // Reset to decision level 0 so value checks below are top-level facts.
        self.backjump(0);
        let mut clause: Vec<Lit> = lits.into_iter().collect();
        for lit in &clause {
            assert!(lit.var().index() < self.num_vars, "literal out of range");
        }
        clause.sort();
        clause.dedup();
        // Tautologies are trivially satisfied.
        for i in 1..clause.len() {
            if clause[i] == !clause[i - 1] {
                return;
            }
        }
        // Remove literals already false at top level; drop satisfied clauses.
        clause.retain(|&l| self.lit_value(l) != Some(false));
        if clause.iter().any(|&l| self.lit_value(l) == Some(true)) {
            return;
        }
        match clause.len() {
            0 => self.ok = false,
            1 => {
                if !self.enqueue(clause[0], None) || self.propagate().is_some() {
                    self.ok = false;
                }
            }
            _ => {
                self.attach(clause);
            }
        }
    }

    fn attach(&mut self, lits: Vec<Lit>) -> usize {
        let idx = self.clauses.len();
        self.watches[(!lits[0]).code()].push(Watch {
            clause: idx,
            blocker: lits[1],
        });
        self.watches[(!lits[1]).code()].push(Watch {
            clause: idx,
            blocker: lits[0],
        });
        self.clauses.push(Clause { lits });
        idx
    }

    fn enqueue(&mut self, lit: Lit, reason: Option<usize>) -> bool {
        match self.lit_value(lit) {
            Some(true) => true,
            Some(false) => false,
            None => {
                let v = lit.var().index();
                self.assign[v] = Some(lit.is_positive());
                self.level[v] = self.current_level();
                self.reason[v] = reason;
                self.trail.push(lit);
                true
            }
        }
    }

    fn propagate(&mut self) -> Option<usize> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;

            let mut watch_list = std::mem::take(&mut self.watches[p.code()]);
            let mut kept = Vec::with_capacity(watch_list.len());
            let mut conflict = None;
            let mut iter = watch_list.drain(..);
            for watch in iter.by_ref() {
                if self.lit_value(watch.blocker) == Some(true) {
                    kept.push(watch);
                    continue;
                }
                let clause_idx = watch.clause;
                let false_lit = !p;
                // Ensure the falsified literal is at position 1.
                {
                    let clause = &mut self.clauses[clause_idx];
                    if clause.lits[0] == false_lit {
                        clause.lits.swap(0, 1);
                    }
                }
                let first = self.clauses[clause_idx].lits[0];
                if first != watch.blocker && self.lit_value(first) == Some(true) {
                    kept.push(Watch {
                        clause: clause_idx,
                        blocker: first,
                    });
                    continue;
                }
                // Look for a new literal to watch.
                let mut moved = false;
                {
                    let len = self.clauses[clause_idx].lits.len();
                    for k in 2..len {
                        let candidate = self.clauses[clause_idx].lits[k];
                        if self.lit_value(candidate) != Some(false) {
                            self.clauses[clause_idx].lits.swap(1, k);
                            self.watches[(!candidate).code()].push(Watch {
                                clause: clause_idx,
                                blocker: first,
                            });
                            moved = true;
                            break;
                        }
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit or conflicting under the current assignment.
                kept.push(Watch {
                    clause: clause_idx,
                    blocker: first,
                });
                if self.lit_value(first) == Some(false) {
                    conflict = Some(clause_idx);
                    self.qhead = self.trail.len();
                    break;
                }
                let enqueued = self.enqueue(first, Some(clause_idx));
                debug_assert!(enqueued, "unit literal must be assignable");
            }
            kept.extend(iter);
            debug_assert!(self.watches[p.code()].is_empty() || conflict.is_none());
            // New watches for other literals may have been appended while we
            // iterated; keep them.
            let appended = std::mem::take(&mut self.watches[p.code()]);
            kept.extend(appended);
            self.watches[p.code()] = kept;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    fn bump_var(&mut self, var: usize) {
        self.activity[var] += self.var_inc;
        if self.activity[var] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.update(var, &self.activity);
    }

    fn analyze(&mut self, mut conflict: usize) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::positive(Var::new(0))]; // placeholder for the asserting literal
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let current = self.current_level();

        loop {
            let clause_lits = self.clauses[conflict].lits.clone();
            let skip = usize::from(p.is_some());
            for &q in clause_lits.iter().skip(skip) {
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var(v);
                    if self.level[v] >= current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next literal of the current level to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            let v = lit.var().index();
            self.seen[v] = false;
            counter -= 1;
            p = Some(lit);
            if counter == 0 {
                break;
            }
            conflict = self.reason[v].expect("non-UIP literal has a reason clause");
        }
        learnt[0] = !p.expect("analysis produced an asserting literal");

        // Clear the seen flags of the remaining literals.
        for &lit in &learnt {
            self.seen[lit.var().index()] = false;
        }

        // Compute the backtrack level: the highest level among the non-asserting literals.
        let backtrack_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_idx = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_idx].var().index()] {
                    max_idx = i;
                }
            }
            learnt.swap(1, max_idx);
            self.level[learnt[1].var().index()]
        };
        (learnt, backtrack_level)
    }

    fn backjump(&mut self, target_level: u32) {
        if self.current_level() <= target_level {
            return;
        }
        let keep = self.trail_lim[target_level as usize];
        while self.trail.len() > keep {
            let lit = self.trail.pop().expect("trail entry");
            let v = lit.var().index();
            self.phase[v] = lit.is_positive();
            self.assign[v] = None;
            self.reason[v] = None;
            self.heap.insert(v, &self.activity);
        }
        self.trail_lim.truncate(target_level as usize);
        self.qhead = self.trail.len();
    }

    fn decide(&mut self) -> bool {
        while let Some(v) = self.heap.pop(&self.activity) {
            if self.assign[v].is_none() {
                self.stats.decisions += 1;
                self.trail_lim.push(self.trail.len());
                let lit = Lit::new(Var::new(v as u32), self.phase[v]);
                let enqueued = self.enqueue(lit, None);
                debug_assert!(enqueued);
                return true;
            }
        }
        false
    }

    /// Solves the formula to completion.
    pub fn solve(&mut self) -> SatResult {
        self.solve_with_limits(Limits::unlimited())
    }

    /// Solves the formula, giving up with [`SatResult::Unknown`] when the
    /// budget in `limits` is exhausted.
    pub fn solve_with_limits(&mut self, limits: Limits) -> SatResult {
        if !self.ok {
            return SatResult::Unsat;
        }
        self.backjump(0);
        if self.propagate().is_some() {
            self.ok = false;
            return SatResult::Unsat;
        }

        let mut conflicts_since_restart = 0u64;
        let mut restart_limit = 100u64 * luby(self.stats.restarts + 1);

        loop {
            if let Some(max) = limits.max_conflicts {
                if self.stats.conflicts >= max {
                    self.backjump(0);
                    return SatResult::Unknown;
                }
            }
            if let Some(max) = limits.max_propagations {
                if self.stats.propagations >= max {
                    self.backjump(0);
                    return SatResult::Unknown;
                }
            }

            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                if self.current_level() == 0 {
                    self.ok = false;
                    return SatResult::Unsat;
                }
                let (learnt, backtrack_level) = self.analyze(conflict);
                self.backjump(backtrack_level);
                if learnt.len() == 1 {
                    let enqueued = self.enqueue(learnt[0], None);
                    debug_assert!(enqueued);
                } else {
                    let asserting = learnt[0];
                    let idx = self.attach(learnt);
                    self.stats.learnt_clauses += 1;
                    let enqueued = self.enqueue(asserting, Some(idx));
                    debug_assert!(enqueued);
                }
                self.var_inc /= 0.95;
            } else {
                if conflicts_since_restart >= restart_limit {
                    self.stats.restarts += 1;
                    conflicts_since_restart = 0;
                    restart_limit = 100 * luby(self.stats.restarts + 1);
                    self.backjump(0);
                    continue;
                }
                if !self.decide() {
                    // All variables assigned: build the model.
                    let values = self
                        .assign
                        .iter()
                        .map(|v| v.unwrap_or(false))
                        .collect::<Vec<_>>();
                    let model = Model::new(values);
                    self.backjump(0);
                    return SatResult::Sat(model);
                }
            }
        }
    }
}

/// The Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, …
fn luby(mut i: u64) -> u64 {
    // Find the finite subsequence containing index i and its size.
    let mut k = 1u32;
    while (1u64 << k) - 1 < i {
        k += 1;
    }
    loop {
        if (1u64 << (k - 1)) - 1 == i {
            return 1u64 << (k - 1);
        }
        if i == 0 {
            return 1;
        }
        if (1u64 << k) - 1 == i {
            return 1u64 << (k - 1);
        }
        i -= (1u64 << (k - 1)) - 1;
        k = 1;
        while (1u64 << k) - 1 < i {
            k += 1;
        }
    }
}

/// An indexed binary max-heap over variables, ordered by activity.
#[derive(Debug, Clone)]
struct VarHeap {
    heap: Vec<usize>,
    position: Vec<Option<usize>>,
}

impl VarHeap {
    fn new(num_vars: usize) -> Self {
        VarHeap {
            heap: Vec::with_capacity(num_vars),
            position: vec![None; num_vars],
        }
    }

    fn contains(&self, var: usize) -> bool {
        self.position[var].is_some()
    }

    fn insert(&mut self, var: usize, activity: &[f64]) {
        if self.contains(var) {
            return;
        }
        self.position[var] = Some(self.heap.len());
        self.heap.push(var);
        self.sift_up(self.heap.len() - 1, activity);
    }

    fn update(&mut self, var: usize, activity: &[f64]) {
        if let Some(pos) = self.position[var] {
            self.sift_up(pos, activity);
        }
    }

    fn pop(&mut self, activity: &[f64]) -> Option<usize> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.position[top] = None;
        let last = self.heap.pop().expect("heap non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.position[last] = Some(0);
            self.sift_down(0, activity);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut pos: usize, activity: &[f64]) {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if activity[self.heap[pos]] > activity[self.heap[parent]] {
                self.swap(pos, parent);
                pos = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut pos: usize, activity: &[f64]) {
        loop {
            let left = 2 * pos + 1;
            let right = 2 * pos + 2;
            let mut largest = pos;
            if left < self.heap.len() && activity[self.heap[left]] > activity[self.heap[largest]] {
                largest = left;
            }
            if right < self.heap.len() && activity[self.heap[right]] > activity[self.heap[largest]]
            {
                largest = right;
            }
            if largest == pos {
                break;
            }
            self.swap(pos, largest);
            pos = largest;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.position[self.heap[a]] = Some(a);
        self.position[self.heap[b]] = Some(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: usize, positive: bool) -> Lit {
        Lit::new(Var::new(v as u32), positive)
    }

    /// Brute-force satisfiability check for cross-validation.
    fn brute_force_sat(num_vars: usize, clauses: &[Vec<Lit>]) -> bool {
        assert!(num_vars <= 20, "brute force only for small formulas");
        'outer: for assignment in 0u32..(1 << num_vars) {
            for clause in clauses {
                let satisfied = clause.iter().any(|l| {
                    let bit = (assignment >> l.var().index()) & 1 == 1;
                    bit == l.is_positive()
                });
                if !satisfied {
                    continue 'outer;
                }
            }
            return true;
        }
        false
    }

    fn solve_clauses(num_vars: usize, clauses: &[Vec<Lit>]) -> SatResult {
        let mut solver = Solver::new(num_vars);
        for clause in clauses {
            solver.add_clause(clause.iter().copied());
        }
        solver.solve()
    }

    #[test]
    fn empty_formula_is_sat() {
        assert!(solve_clauses(3, &[]).is_sat());
    }

    #[test]
    fn unit_clauses_propagate() {
        let clauses = vec![vec![lit(0, true)], vec![lit(0, false), lit(1, true)]];
        match solve_clauses(2, &clauses) {
            SatResult::Sat(model) => {
                assert!(model.value(Var::new(0)));
                assert!(model.value(Var::new(1)));
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn contradictory_units_are_unsat() {
        let clauses = vec![vec![lit(0, true)], vec![lit(0, false)]];
        assert!(solve_clauses(1, &clauses).is_unsat());
    }

    #[test]
    fn pigeonhole_three_into_two_is_unsat() {
        // Pigeon i in hole j: variable 2*i + j for i in 0..3, j in 0..2.
        let var = |pigeon: usize, hole: usize| lit(2 * pigeon + hole, true);
        let mut clauses = Vec::new();
        for pigeon in 0..3 {
            clauses.push(vec![var(pigeon, 0), var(pigeon, 1)]);
        }
        for hole in 0..2 {
            for a in 0..3 {
                for b in (a + 1)..3 {
                    clauses.push(vec![!var(a, hole), !var(b, hole)]);
                }
            }
        }
        assert!(solve_clauses(6, &clauses).is_unsat());
    }

    #[test]
    fn simple_backtracking_formula() {
        // (a ∨ b) ∧ (¬a ∨ c) ∧ (¬b ∨ c) ∧ (¬c ∨ d) ∧ (¬d ∨ ¬a)
        let clauses = vec![
            vec![lit(0, true), lit(1, true)],
            vec![lit(0, false), lit(2, true)],
            vec![lit(1, false), lit(2, true)],
            vec![lit(2, false), lit(3, true)],
            vec![lit(3, false), lit(0, false)],
        ];
        match solve_clauses(4, &clauses) {
            SatResult::Sat(model) => {
                assert!(model.satisfies(&clauses));
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn model_always_satisfies_formula() {
        let clauses = vec![
            vec![lit(0, true), lit(1, false), lit(2, true)],
            vec![lit(1, true), lit(2, false)],
            vec![lit(0, false), lit(3, true)],
            vec![lit(3, false), lit(4, true), lit(1, true)],
            vec![lit(4, false), lit(0, true)],
        ];
        match solve_clauses(5, &clauses) {
            SatResult::Sat(model) => assert!(model.satisfies(&clauses)),
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn tautological_clauses_are_ignored() {
        let clauses = vec![vec![lit(0, true), lit(0, false)], vec![lit(1, true)]];
        assert!(solve_clauses(2, &clauses).is_sat());
    }

    #[test]
    fn limits_return_unknown() {
        // A hard pigeonhole instance with a tiny conflict budget.
        let pigeons = 6usize;
        let holes = 5usize;
        let var = |pigeon: usize, hole: usize| lit(pigeon * holes + hole, true);
        let mut clauses = Vec::new();
        for p in 0..pigeons {
            clauses.push((0..holes).map(|h| var(p, h)).collect::<Vec<_>>());
        }
        for h in 0..holes {
            for a in 0..pigeons {
                for b in (a + 1)..pigeons {
                    clauses.push(vec![!var(a, h), !var(b, h)]);
                }
            }
        }
        let mut solver = Solver::new(pigeons * holes);
        for clause in &clauses {
            solver.add_clause(clause.iter().copied());
        }
        let result = solver.solve_with_limits(Limits::conflicts(3));
        assert_eq!(result, SatResult::Unknown);
        // And without limits the instance is UNSAT.
        let mut solver = Solver::new(pigeons * holes);
        for clause in &clauses {
            solver.add_clause(clause.iter().copied());
        }
        assert!(solver.solve().is_unsat());
        assert!(solver.stats().conflicts > 0);
    }

    #[test]
    fn luby_sequence_prefix() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let actual: Vec<u64> = (1..=15).map(luby).collect();
        assert_eq!(actual, expected);
    }

    #[test]
    fn agrees_with_brute_force_on_fixed_formulas() {
        let formulas: Vec<(usize, Vec<Vec<Lit>>)> = vec![
            (
                3,
                vec![vec![lit(0, true)], vec![lit(1, true), lit(2, false)]],
            ),
            (
                3,
                vec![
                    vec![lit(0, true), lit(1, true)],
                    vec![lit(0, false), lit(1, false)],
                    vec![lit(1, true), lit(2, true)],
                    vec![lit(1, false), lit(2, false)],
                    vec![lit(0, true), lit(2, true)],
                    vec![lit(0, false), lit(2, false)],
                ],
            ),
        ];
        for (num_vars, clauses) in formulas {
            let expected = brute_force_sat(num_vars, &clauses);
            let actual = solve_clauses(num_vars, &clauses).is_sat();
            assert_eq!(actual, expected);
        }
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        fn clause_strategy(num_vars: usize) -> impl Strategy<Value = Vec<Lit>> {
            proptest::collection::vec(
                (0..num_vars, proptest::bool::ANY).prop_map(|(v, s)| lit(v, s)),
                1..4,
            )
        }

        proptest! {
            /// On random small 3-CNF formulas the CDCL solver agrees with
            /// exhaustive enumeration, and SAT answers carry genuine models.
            #[test]
            fn cdcl_matches_brute_force(
                clauses in proptest::collection::vec(clause_strategy(8), 0..40)
            ) {
                let expected = brute_force_sat(8, &clauses);
                match solve_clauses(8, &clauses) {
                    SatResult::Sat(model) => {
                        prop_assert!(expected);
                        prop_assert!(model.satisfies(&clauses));
                    }
                    SatResult::Unsat => prop_assert!(!expected),
                    SatResult::Unknown => prop_assert!(false, "no limits were set"),
                }
            }
        }
    }
}
