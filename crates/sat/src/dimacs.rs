//! Reading and writing formulas in the DIMACS CNF interchange format.
//!
//! DIMACS support exists mainly so that encodings produced by the learner can
//! be dumped for inspection or cross-checked against external solvers, and so
//! that standard benchmark instances can be replayed against the solver in
//! tests.

use crate::cnf::Cnf;
use crate::lit::{Lit, Var};
use std::error::Error;
use std::fmt;

/// Error raised when parsing a DIMACS file fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    /// One-based line number of the offending line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dimacs parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseDimacsError {}

/// Serialises a formula to DIMACS CNF text.
///
/// # Example
///
/// ```
/// use tracelearn_sat::{to_dimacs, Cnf, Lit};
///
/// let mut cnf = Cnf::new();
/// let a = cnf.new_var();
/// let b = cnf.new_var();
/// cnf.add_clause([Lit::positive(a), Lit::negative(b)]);
/// let text = to_dimacs(&cnf);
/// assert!(text.starts_with("p cnf 2 1"));
/// ```
pub fn to_dimacs(cnf: &Cnf) -> String {
    let mut out = format!("p cnf {} {}\n", cnf.num_vars(), cnf.num_clauses());
    for clause in cnf.clauses() {
        for lit in clause {
            let v = lit.var().index() as i64 + 1;
            let signed = if lit.is_positive() { v } else { -v };
            out.push_str(&signed.to_string());
            out.push(' ');
        }
        out.push_str("0\n");
    }
    out
}

/// Parses a DIMACS CNF file into a [`Cnf`].
///
/// # Errors
///
/// Returns [`ParseDimacsError`] for malformed headers, literals outside the
/// declared variable range, or clauses missing their terminating `0`.
pub fn from_dimacs(text: &str) -> Result<Cnf, ParseDimacsError> {
    let mut cnf = Cnf::new();
    let mut declared_vars: Option<usize> = None;
    let mut current_clause: Vec<Lit> = Vec::new();
    for (index, line) in text.lines().enumerate() {
        let line_no = index + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            let fields: Vec<&str> = rest.split_whitespace().collect();
            if fields.len() != 3 || fields[0] != "cnf" {
                return Err(ParseDimacsError {
                    line: line_no,
                    message: "header must be `p cnf <vars> <clauses>`".to_owned(),
                });
            }
            let vars: usize = fields[1].parse().map_err(|_| ParseDimacsError {
                line: line_no,
                message: "variable count is not a number".to_owned(),
            })?;
            declared_vars = Some(vars);
            cnf.new_vars(vars);
            continue;
        }
        let declared = declared_vars.ok_or_else(|| ParseDimacsError {
            line: line_no,
            message: "clause before `p cnf` header".to_owned(),
        })?;
        for token in line.split_whitespace() {
            let value: i64 = token.parse().map_err(|_| ParseDimacsError {
                line: line_no,
                message: format!("`{token}` is not a literal"),
            })?;
            if value == 0 {
                cnf.add_clause(current_clause.drain(..));
            } else {
                let var_index = value.unsigned_abs() as usize - 1;
                if var_index >= declared {
                    return Err(ParseDimacsError {
                        line: line_no,
                        message: format!("literal {value} exceeds declared variable count"),
                    });
                }
                let var = Var::new(var_index as u32);
                current_clause.push(Lit::new(var, value > 0));
            }
        }
    }
    if !current_clause.is_empty() {
        return Err(ParseDimacsError {
            line: text.lines().count(),
            message: "last clause is not terminated by 0".to_owned(),
        });
    }
    Ok(cnf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{SatResult, Solver};

    #[test]
    fn round_trip() {
        let mut cnf = Cnf::new();
        let vars = cnf.new_vars(3);
        cnf.add_clause([Lit::positive(vars[0]), Lit::negative(vars[1])]);
        cnf.add_clause([Lit::positive(vars[2])]);
        let text = to_dimacs(&cnf);
        let parsed = from_dimacs(&text).unwrap();
        assert_eq!(parsed.num_vars(), 3);
        assert_eq!(parsed.num_clauses(), 2);
        assert_eq!(parsed.clauses(), cnf.clauses());
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "c a comment\n\np cnf 2 1\nc another\n1 -2 0\n";
        let cnf = from_dimacs(text).unwrap();
        assert_eq!(cnf.num_vars(), 2);
        assert_eq!(cnf.num_clauses(), 1);
    }

    #[test]
    fn rejects_missing_header() {
        assert!(from_dimacs("1 2 0\n").is_err());
    }

    #[test]
    fn rejects_bad_header_and_literals() {
        assert!(from_dimacs("p cnf x 1\n").is_err());
        assert!(from_dimacs("p dnf 1 1\n").is_err());
        assert!(from_dimacs("p cnf 1 1\n2 0\n").is_err());
        assert!(from_dimacs("p cnf 1 1\nfoo 0\n").is_err());
        assert!(from_dimacs("p cnf 1 1\n1\n").is_err());
    }

    #[test]
    fn parsed_instance_is_solvable() {
        // (x1 ∨ x2) ∧ (¬x1 ∨ x2) ∧ (¬x2 ∨ x3)
        let text = "p cnf 3 3\n1 2 0\n-1 2 0\n-2 3 0\n";
        let cnf = from_dimacs(text).unwrap();
        match Solver::from_cnf(&cnf).solve() {
            SatResult::Sat(model) => {
                assert!(model.value(Var::new(1)));
                assert!(model.value(Var::new(2)));
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn error_display() {
        let err = from_dimacs("p cnf 1 1\n2 0\n").unwrap_err();
        assert!(err.to_string().contains("line 2"));
    }
}
