//! A self-contained CDCL SAT solver and CNF construction toolkit.
//!
//! The DAC 2020 paper queries CBMC with a C program whose assertion failure
//! witnesses encode candidate automata. CBMC's role there is purely that of a
//! finite-domain constraint solver, so this crate provides the equivalent
//! substrate: propositional formulas are built with [`Cnf`], solved with the
//! conflict-driven clause-learning [`Solver`], and a satisfying [`Model`] is
//! decoded back into an automaton by the `tracelearn-core` crate.
//!
//! The solver implements the standard modern architecture: two-watched-literal
//! propagation, first-UIP conflict analysis with clause learning, VSIDS-style
//! activity-ordered decisions, phase saving and Luby restarts. It is complete
//! (always answers SAT or UNSAT) unless a resource [`Limits`] budget is given,
//! in which case it may answer [`SatResult::Unknown`].
//!
//! # Incremental solving
//!
//! A [`Solver`] is designed to be *reused* across a sequence of related
//! queries, which is how the learner's refinement loop drives it:
//!
//! * [`Solver::add_clause`] and [`Solver::new_var`] grow the formula between
//!   solve calls; learnt clauses from earlier calls are kept and prune the
//!   later searches (an activity-based database reduction evicts the least
//!   useful half on a geometric schedule, so long runs stay bounded).
//! * [`Limits`] are accounted **per call**: every call measures its conflict
//!   and propagation budget from its own entry point, so a reused solver is
//!   never charged for work done by earlier calls.
//!   [`Solver::last_call_stats`] reports the per-call counters.
//! * [`Solver::solve_with_assumptions`] solves under temporary unit
//!   assumptions — forced first decisions that do not persist after the call.
//!   `Sat` models satisfy every assumption; on `Unsat` the subset of
//!   assumptions the refutation used is available from
//!   [`Solver::failed_assumptions`] (MiniSat's final conflict clause).
//!   An `Unsat` answer with an *empty* failed set means the formula is
//!   unsatisfiable regardless of assumptions.
//!
//! # Example
//!
//! ```
//! use tracelearn_sat::{Cnf, Lit, SatResult, Solver};
//!
//! let mut cnf = Cnf::new();
//! let a = cnf.new_var();
//! let b = cnf.new_var();
//! cnf.add_clause([Lit::positive(a), Lit::positive(b)]);
//! cnf.add_clause([Lit::negative(a)]);
//!
//! let mut solver = Solver::from_cnf(&cnf);
//! match solver.solve() {
//!     SatResult::Sat(model) => {
//!         assert!(!model.value(a));
//!         assert!(model.value(b));
//!     }
//!     _ => panic!("formula is satisfiable"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cnf;
mod dimacs;
mod lit;
mod model;
mod solver;

pub use crate::cnf::Cnf;
pub use crate::dimacs::{from_dimacs, to_dimacs, ParseDimacsError};
pub use crate::lit::{Lit, Var};
pub use crate::model::Model;
pub use crate::solver::{Limits, SatResult, Solver, SolverStats, LBD_BUCKETS};
