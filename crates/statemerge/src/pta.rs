//! Prefix tree acceptors.

use tracelearn_automaton::{Nfa, StateId};

/// A prefix tree acceptor: the tree automaton whose paths from the root are
/// exactly the prefixes of the training sequences.
///
/// Every state-merge algorithm starts from the PTA and merges its states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pta {
    automaton: Nfa<String>,
    /// Number of training sequences that pass through each state, the
    /// "evidence" weight used by EDSM scoring.
    weights: Vec<usize>,
}

impl Pta {
    /// Builds the PTA of a set of event sequences.
    ///
    /// # Example
    ///
    /// ```
    /// use tracelearn_statemerge::Pta;
    ///
    /// let pta = Pta::from_sequences(&[
    ///     vec!["a".to_owned(), "b".to_owned()],
    ///     vec!["a".to_owned(), "c".to_owned()],
    /// ]);
    /// // Root, shared "a" state, and one state per distinct suffix.
    /// assert_eq!(pta.automaton().num_states(), 4);
    /// ```
    pub fn from_sequences(sequences: &[Vec<String>]) -> Self {
        // First build the tree as adjacency lists, then freeze into an Nfa.
        let mut children: Vec<Vec<(String, usize)>> = vec![Vec::new()];
        let mut weights: Vec<usize> = vec![0];
        for sequence in sequences {
            let mut current = 0usize;
            weights[current] += 1;
            for event in sequence {
                let next = match children[current].iter().find(|(label, _)| label == event) {
                    Some((_, existing)) => *existing,
                    None => {
                        let fresh = children.len();
                        children.push(Vec::new());
                        weights.push(0);
                        children[current].push((event.clone(), fresh));
                        fresh
                    }
                };
                weights[next] += 1;
                current = next;
            }
        }
        let mut automaton = Nfa::new(children.len(), StateId::new(0));
        for (from, outgoing) in children.iter().enumerate() {
            for (label, to) in outgoing {
                automaton.add_transition(
                    StateId::new(from as u32),
                    label.clone(),
                    StateId::new(*to as u32),
                );
            }
        }
        Pta { automaton, weights }
    }

    /// The PTA as an automaton.
    pub fn automaton(&self) -> &Nfa<String> {
        &self.automaton
    }

    /// The number of training sequences passing through `state`.
    pub fn weight(&self, state: StateId) -> usize {
        self.weights.get(state.index()).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(events: &[&str]) -> Vec<String> {
        events.iter().map(|e| (*e).to_owned()).collect()
    }

    #[test]
    fn single_sequence_is_a_chain() {
        let pta = Pta::from_sequences(&[seq(&["a", "b", "c"])]);
        assert_eq!(pta.automaton().num_states(), 4);
        assert_eq!(pta.automaton().num_transitions(), 3);
        assert!(pta.automaton().is_deterministic());
    }

    #[test]
    fn shared_prefixes_are_shared_states() {
        let pta = Pta::from_sequences(&[seq(&["a", "b"]), seq(&["a", "c"]), seq(&["a", "b"])]);
        assert_eq!(pta.automaton().num_states(), 4);
        // The root and the "a" state carry all three sequences.
        assert_eq!(pta.weight(StateId::new(0)), 3);
        assert_eq!(pta.weight(StateId::new(1)), 3);
    }

    #[test]
    fn pta_accepts_exactly_its_prefixes() {
        let pta = Pta::from_sequences(&[seq(&["a", "b", "a"])]);
        let automaton = pta.automaton();
        assert!(automaton.accepts(&seq(&["a"])));
        assert!(automaton.accepts(&seq(&["a", "b", "a"])));
        assert!(!automaton.accepts(&seq(&["b"])));
        assert!(!automaton.accepts(&seq(&["a", "a"])));
    }

    #[test]
    fn empty_input_is_just_the_root() {
        let pta = Pta::from_sequences(&[]);
        assert_eq!(pta.automaton().num_states(), 1);
        assert_eq!(pta.automaton().num_transitions(), 0);
    }

    #[test]
    fn weight_of_unknown_state_is_zero() {
        let pta = Pta::from_sequences(&[seq(&["a"])]);
        assert_eq!(pta.weight(StateId::new(40)), 0);
    }
}
