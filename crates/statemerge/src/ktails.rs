//! The kTails state-merge algorithm.

use crate::merge::MergeAutomaton;
use crate::pta::Pta;
use std::collections::{BTreeMap, BTreeSet};
use tracelearn_automaton::Nfa;

/// Runs kTails on a PTA: states whose outgoing label paths agree up to
/// length `k` are merged, repeatedly, until a fixpoint is reached.
///
/// # Example
///
/// ```
/// use tracelearn_statemerge::{k_tails, Pta};
///
/// let pta = Pta::from_sequences(&[
///     vec!["a".into(), "b".into(), "a".into(), "b".into(), "a".into(), "b".into()],
/// ]);
/// let model = k_tails(&pta, 2);
/// assert!(model.num_states() < pta.automaton().num_states());
/// ```
pub fn k_tails(pta: &Pta, k: usize) -> Nfa<String> {
    let mut automaton = MergeAutomaton::from_pta(pta);
    let total_states = pta.automaton().num_states();
    loop {
        // Partition current representatives by their k-tail. A BTreeMap,
        // not a HashMap: bucket visit order decides which merges happen in
        // a round when buckets overlap through union-find, so hash order
        // would make the learned model depend on the hasher.
        let mut buckets: BTreeMap<BTreeSet<Vec<String>>, Vec<usize>> = BTreeMap::new();
        let mut representatives = Vec::new();
        for state in 0..total_states {
            if automaton.find(state) == state {
                representatives.push(state);
            }
        }
        for &state in &representatives {
            let tail = tails(&mut automaton, state, k);
            buckets.entry(tail).or_default().push(state);
        }
        let mut merged_any = false;
        for bucket in buckets.values() {
            if bucket.len() > 1 {
                for &other in &bucket[1..] {
                    if !automaton.same(bucket[0], other) {
                        automaton.merge(bucket[0], other);
                        merged_any = true;
                    }
                }
            }
        }
        if !merged_any {
            break;
        }
    }
    automaton.to_nfa()
}

/// The set of label paths of length at most `k` leaving `state`.
fn tails(automaton: &mut MergeAutomaton, state: usize, k: usize) -> BTreeSet<Vec<String>> {
    let mut result = BTreeSet::new();
    let mut frontier: Vec<(usize, Vec<String>)> = vec![(state, Vec::new())];
    while let Some((current, path)) = frontier.pop() {
        if path.len() >= k {
            continue;
        }
        for (label, targets) in automaton.outgoing(current) {
            let mut extended = path.clone();
            extended.push(label);
            result.insert(extended.clone());
            for target in targets {
                frontier.push((target, extended.clone()));
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(events: &[&str]) -> Vec<String> {
        events.iter().map(|e| (*e).to_owned()).collect()
    }

    #[test]
    fn periodic_sequence_collapses_to_a_small_loop() {
        let pta = Pta::from_sequences(&[seq(&["a", "b", "a", "b", "a", "b", "a", "b", "a", "b"])]);
        let model = k_tails(&pta, 2);
        assert!(model.num_states() <= 4, "{} states", model.num_states());
        assert!(model.accepts(&seq(&["a", "b", "a", "b", "a", "b", "a", "b"])));
    }

    #[test]
    fn training_sequences_remain_accepted() {
        let sequences = vec![
            seq(&[
                "enable", "addr", "config", "stop", "config", "stop", "disable",
            ]),
            seq(&["enable", "addr", "config", "disable"]),
        ];
        let pta = Pta::from_sequences(&sequences);
        let model = k_tails(&pta, 2);
        for sequence in &sequences {
            assert!(model.accepts(sequence));
        }
    }

    #[test]
    fn higher_k_merges_less() {
        let sequence = seq(&["a", "b", "c", "a", "b", "d", "a", "b", "c", "a", "b", "d"]);
        let pta = Pta::from_sequences(&[sequence]);
        let loose = k_tails(&pta, 1);
        let strict = k_tails(&pta, 4);
        assert!(loose.num_states() <= strict.num_states());
    }

    #[test]
    fn unmergeable_distinct_behaviour_stays_separate() {
        // Two completely different alphabets cannot merge below 1+len states each.
        let pta = Pta::from_sequences(&[seq(&["p", "q", "r"])]);
        let model = k_tails(&pta, 2);
        // A straight line with distinct labels cannot collapse at all.
        assert_eq!(model.num_states(), 4);
    }

    #[test]
    fn k_zero_merges_everything() {
        let pta = Pta::from_sequences(&[seq(&["a", "b", "c"])]);
        let model = k_tails(&pta, 0);
        assert_eq!(model.num_states(), 1);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// kTails never rejects a sequence it was trained on.
            #[test]
            fn training_acceptance_is_preserved(
                events in proptest::collection::vec(0u8..4, 1..40),
                k in 0usize..4
            ) {
                let sequence: Vec<String> = events.iter().map(|e| format!("e{e}")).collect();
                let pta = Pta::from_sequences(std::slice::from_ref(&sequence));
                let model = k_tails(&pta, k);
                prop_assert!(model.accepts(&sequence));
                prop_assert!(model.num_states() <= pta.automaton().num_states());
            }
        }
    }
}
