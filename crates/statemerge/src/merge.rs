//! Merge-and-fold machinery shared by kTails and EDSM.

use crate::pta::Pta;
use std::collections::{BTreeMap, BTreeSet};
use tracelearn_automaton::{Nfa, StateId};

/// A mutable automaton supporting state merging with automatic folding.
///
/// Merging two states can make the automaton non-deterministic (two
/// transitions with the same label from the merged state); folding resolves
/// this by recursively merging the conflicting targets, the standard
/// behaviour of state-merge inference.
#[derive(Debug, Clone)]
pub struct MergeAutomaton {
    parent: Vec<usize>,
    outgoing: Vec<BTreeMap<String, BTreeSet<usize>>>,
    initial: usize,
}

impl MergeAutomaton {
    /// Builds the merge automaton from a PTA.
    pub fn from_pta(pta: &Pta) -> Self {
        let automaton = pta.automaton();
        let n = automaton.num_states();
        let mut outgoing: Vec<BTreeMap<String, BTreeSet<usize>>> = vec![BTreeMap::new(); n];
        for t in automaton.transitions() {
            outgoing[t.from.index()]
                .entry(t.label.clone())
                .or_default()
                .insert(t.to.index());
        }
        MergeAutomaton {
            parent: (0..n).collect(),
            outgoing,
            initial: automaton.initial().index(),
        }
    }

    /// The representative of `state` under the merges performed so far.
    pub fn find(&mut self, state: usize) -> usize {
        if self.parent[state] != state {
            let root = self.find(self.parent[state]);
            self.parent[state] = root;
            root
        } else {
            state
        }
    }

    /// The representative of `state` without path compression (read-only).
    pub fn find_readonly(&self, mut state: usize) -> usize {
        while self.parent[state] != state {
            state = self.parent[state];
        }
        state
    }

    /// Whether two states have already been merged together.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Merges `a` and `b` (and folds away any resulting non-determinism).
    pub fn merge(&mut self, a: usize, b: usize) {
        let mut worklist = vec![(a, b)];
        while let Some((x, y)) = worklist.pop() {
            let x = self.find(x);
            let y = self.find(y);
            if x == y {
                continue;
            }
            // Keep the initial state's representative stable when possible.
            let (keep, absorb) = if y == self.find(self.initial) {
                (y, x)
            } else {
                (x, y)
            };
            self.parent[absorb] = keep;
            let absorbed = std::mem::take(&mut self.outgoing[absorb]);
            for (label, targets) in absorbed {
                self.outgoing[keep]
                    .entry(label)
                    .or_default()
                    .extend(targets);
            }
            // Fold: any label with two distinct target representatives forces
            // those targets to merge as well.
            let labels: Vec<String> = self.outgoing[keep].keys().cloned().collect();
            for label in labels {
                let targets: Vec<usize> = self.outgoing[keep][&label].iter().copied().collect();
                let mut representatives: Vec<usize> =
                    targets.iter().map(|&t| self.find(t)).collect();
                representatives.sort_unstable();
                representatives.dedup();
                if representatives.len() > 1 {
                    let canonical = representatives[0];
                    for other in &representatives[1..] {
                        worklist.push((canonical, *other));
                    }
                }
            }
        }
    }

    /// Number of distinct (merged) states.
    pub fn num_states(&self) -> usize {
        (0..self.parent.len())
            .filter(|&s| self.find_readonly(s) == s)
            .count()
    }

    /// The outgoing transitions of the representative of `state`, with
    /// targets normalised to representatives.
    pub fn outgoing(&mut self, state: usize) -> BTreeMap<String, BTreeSet<usize>> {
        let root = self.find(state);
        let entries = self.outgoing[root].clone();
        let mut normalised = BTreeMap::new();
        for (label, targets) in entries {
            let set: BTreeSet<usize> = targets.into_iter().map(|t| self.find(t)).collect();
            normalised.insert(label, set);
        }
        normalised
    }

    /// Freezes the merged automaton into an [`Nfa`].
    pub fn to_nfa(&mut self) -> Nfa<String> {
        let n = self.parent.len();
        let mut representatives: Vec<usize> = (0..n).filter(|&s| self.find(s) == s).collect();
        representatives.sort_unstable();
        let index_of = |reps: &[usize], s: usize| reps.binary_search(&s).expect("representative");
        let initial = self.find(self.initial);
        let mut nfa = Nfa::new(
            representatives.len(),
            StateId::new(index_of(&representatives, initial) as u32),
        );
        for &rep in &representatives {
            let outgoing = self.outgoing(rep);
            for (label, targets) in outgoing {
                for target in targets {
                    nfa.add_transition(
                        StateId::new(index_of(&representatives, rep) as u32),
                        label.clone(),
                        StateId::new(index_of(&representatives, self.find(target)) as u32),
                    );
                }
            }
        }
        nfa
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(events: &[&str]) -> Vec<String> {
        events.iter().map(|e| (*e).to_owned()).collect()
    }

    fn chain_pta() -> Pta {
        Pta::from_sequences(&[seq(&["a", "b", "a", "b"])])
    }

    #[test]
    fn initial_state_has_no_merges() {
        let mut m = MergeAutomaton::from_pta(&chain_pta());
        assert_eq!(m.num_states(), 5);
        assert!(!m.same(0, 2));
    }

    #[test]
    fn merging_folds_nondeterminism() {
        // Chain 0 -a-> 1 -b-> 2 -a-> 3 -b-> 4. Merging 0 and 2 makes two
        // a-transitions from the merged state, so 1 and 3 must fold together,
        // and then 2 and 4, collapsing to a two-state loop.
        let mut m = MergeAutomaton::from_pta(&chain_pta());
        m.merge(0, 2);
        let nfa = m.to_nfa();
        assert_eq!(nfa.num_states(), 2);
        assert!(nfa.is_deterministic());
        assert!(nfa.accepts(&seq(&["a", "b", "a", "b", "a", "b"])));
    }

    #[test]
    fn merged_model_still_accepts_training_words() {
        let pta = Pta::from_sequences(&[seq(&["x", "y", "z"]), seq(&["x", "y", "x"])]);
        let mut m = MergeAutomaton::from_pta(&pta);
        m.merge(1, 2);
        let nfa = m.to_nfa();
        assert!(nfa.accepts(&seq(&["x", "y", "z"])));
        assert!(nfa.accepts(&seq(&["x", "y", "x"])));
    }

    #[test]
    fn num_states_decreases_monotonically() {
        let mut m = MergeAutomaton::from_pta(&chain_pta());
        let before = m.num_states();
        m.merge(1, 3);
        assert!(m.num_states() < before);
    }

    #[test]
    fn initial_representative_is_preserved() {
        let mut m = MergeAutomaton::from_pta(&chain_pta());
        m.merge(0, 4);
        let initial_rep = m.find(0);
        assert_eq!(m.find(4), initial_rep);
        let nfa = m.to_nfa();
        // The initial state still has an outgoing `a` transition.
        assert!(nfa.accepts(&seq(&["a"])));
    }

    #[test]
    fn outgoing_normalises_targets() {
        let mut m = MergeAutomaton::from_pta(&chain_pta());
        m.merge(2, 4);
        let out = m.outgoing(2);
        for targets in out.values() {
            for &t in targets {
                assert_eq!(m.find(t), t);
            }
        }
    }
}
