//! State-merge baselines: PTA construction, kTails and blue-fringe EDSM.
//!
//! State merging is the established approach to model inference from traces
//! and the comparison baseline of the paper's Table II and Fig. 2a (the MINT
//! tool). Traces are first arranged into a prefix tree acceptor ([`Pta`]);
//! pairs of states deemed equivalent are then merged — by k-equivalence of
//! their outgoing label paths (kTails, [`k_tails`]) or by an evidence score
//! on a blue-fringe search (EDSM, [`edsm`]). The result is typically much
//! larger than the models produced by the SAT/synthesis learner, which is
//! exactly the comparison the paper draws.
//!
//! # Example
//!
//! ```
//! use tracelearn_statemerge::{MergeAlgorithm, StateMergeConfig, StateMergeLearner};
//!
//! let sequences = vec![
//!     vec!["enable".to_owned(), "addr".to_owned(), "config".to_owned()],
//!     vec!["enable".to_owned(), "addr".to_owned(), "config".to_owned(), "stop".to_owned()],
//! ];
//! let learner = StateMergeLearner::new(StateMergeConfig {
//!     algorithm: MergeAlgorithm::KTails,
//!     k: 2,
//! });
//! let model = learner.learn(&sequences);
//! assert!(model.accepts(&["enable".to_owned(), "addr".to_owned(), "config".to_owned()]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod edsm;
mod ktails;
mod merge;
mod pta;

pub use crate::edsm::edsm;
pub use crate::ktails::k_tails;
pub use crate::merge::MergeAutomaton;
pub use crate::pta::Pta;

use tracelearn_automaton::Nfa;
use tracelearn_trace::{Trace, VarKind};

/// Which merging strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MergeAlgorithm {
    /// Classic kTails: merge states whose outgoing label paths agree up to
    /// length `k`.
    KTails,
    /// Evidence-driven state merging on a blue-fringe search.
    Edsm,
}

/// Configuration of the state-merge learner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateMergeConfig {
    /// The merging strategy.
    pub algorithm: MergeAlgorithm,
    /// The k parameter (tail length for kTails, score horizon for EDSM).
    pub k: usize,
}

impl Default for StateMergeConfig {
    fn default() -> Self {
        StateMergeConfig {
            algorithm: MergeAlgorithm::KTails,
            k: 2,
        }
    }
}

/// A MINT-like facade over the state-merge algorithms.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StateMergeLearner {
    config: StateMergeConfig,
}

impl StateMergeLearner {
    /// Creates a learner with the given configuration.
    pub fn new(config: StateMergeConfig) -> Self {
        StateMergeLearner { config }
    }

    /// The active configuration.
    pub fn config(&self) -> StateMergeConfig {
        self.config
    }

    /// Learns a model from a set of event sequences.
    pub fn learn(&self, sequences: &[Vec<String>]) -> Nfa<String> {
        let pta = Pta::from_sequences(sequences);
        match self.config.algorithm {
            MergeAlgorithm::KTails => k_tails(&pta, self.config.k),
            MergeAlgorithm::Edsm => edsm(&pta, self.config.k),
        }
    }

    /// Learns a model directly from a trace by rendering every observation
    /// as an event string — how a purely event-based tool such as MINT sees
    /// a trace that contains numeric data.
    pub fn learn_from_trace(&self, trace: &Trace) -> Nfa<String> {
        self.learn(&[trace_to_events(trace)])
    }
}

/// Renders each observation of a trace as a single event string, the
/// flattening a state-merge tool applies to non-Boolean data (and the reason
/// it needs 377 states for the counter in the paper's Table II).
pub fn trace_to_events(trace: &Trace) -> Vec<String> {
    let event_only = trace
        .signature()
        .iter()
        .all(|(_, v)| v.kind() == VarKind::Event);
    if event_only && trace.signature().arity() == 1 {
        let name = trace
            .signature()
            .iter()
            .next()
            .map(|(_, v)| v.name().to_owned())
            .unwrap_or_default();
        return trace.event_sequence(&name).unwrap_or_default();
    }
    (0..trace.len())
        .map(|t| trace.render_observation(t).unwrap_or_default())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracelearn_trace::{RowEntry, Signature, Value};

    fn seq(events: &[&str]) -> Vec<String> {
        events.iter().map(|e| (*e).to_owned()).collect()
    }

    #[test]
    fn learner_accepts_training_sequences() {
        let sequences = vec![
            seq(&["a", "b", "c", "a", "b", "c"]),
            seq(&["a", "b", "a", "b"]),
        ];
        for algorithm in [MergeAlgorithm::KTails, MergeAlgorithm::Edsm] {
            let learner = StateMergeLearner::new(StateMergeConfig { algorithm, k: 2 });
            let model = learner.learn(&sequences);
            for sequence in &sequences {
                assert!(
                    model.accepts(sequence),
                    "{algorithm:?} rejects a training sequence"
                );
            }
        }
    }

    #[test]
    fn merged_models_are_no_larger_than_the_pta() {
        let sequences = vec![seq(&["x", "y", "x", "y", "x", "y", "x", "y"])];
        let pta = Pta::from_sequences(&sequences);
        let learner = StateMergeLearner::default();
        let model = learner.learn(&sequences);
        assert!(model.num_states() <= pta.automaton().num_states());
    }

    #[test]
    fn trace_to_events_flattens_numeric_observations() {
        let sig = Signature::builder().int("x").build();
        let mut trace = Trace::new(sig);
        for v in [1i64, 2, 3] {
            trace.push_row([Value::Int(v)]).unwrap();
        }
        let events = trace_to_events(&trace);
        assert_eq!(events, vec!["x=1", "x=2", "x=3"]);
    }

    #[test]
    fn trace_to_events_uses_plain_names_for_event_traces() {
        let sig = Signature::builder().event("cmd").build();
        let mut trace = Trace::new(sig);
        trace
            .push_named_row(vec![RowEntry::Event("enable")])
            .unwrap();
        trace.push_named_row(vec![RowEntry::Event("addr")]).unwrap();
        assert_eq!(trace_to_events(&trace), vec!["enable", "addr"]);
    }

    #[test]
    fn learn_from_trace_produces_a_model_over_rendered_events() {
        let sig = Signature::builder().int("x").build();
        let mut trace = Trace::new(sig);
        for v in [1i64, 2, 1, 2, 1, 2] {
            trace.push_row([Value::Int(v)]).unwrap();
        }
        let model = StateMergeLearner::default().learn_from_trace(&trace);
        assert!(model.accepts(&trace_to_events(&trace)));
    }

    #[test]
    fn default_config() {
        let learner = StateMergeLearner::default();
        assert_eq!(learner.config().k, 2);
        assert_eq!(learner.config().algorithm, MergeAlgorithm::KTails);
    }
}
