//! Evidence-driven state merging (blue-fringe EDSM).

use crate::merge::MergeAutomaton;
use crate::pta::Pta;
use std::collections::BTreeSet;
use tracelearn_automaton::Nfa;

/// Runs blue-fringe EDSM on a PTA.
///
/// Red states form the consolidated core of the hypothesis; blue states are
/// their immediate successors. Each round scores every (red, blue) merge by
/// the evidence it would gather — the number of states that would be folded
/// together — performs the best-scoring merge whose score reaches
/// `min_score`, and promotes unmergeable blue states to red. With only
/// positive traces (the paper's setting) there are no conflicts, so the
/// evidence threshold is what keeps the hypothesis from over-generalising.
pub fn edsm(pta: &Pta, min_score: usize) -> Nfa<String> {
    let mut automaton = MergeAutomaton::from_pta(pta);
    let total_states = pta.automaton().num_states();
    let mut red: BTreeSet<usize> = BTreeSet::new();
    red.insert(automaton.find(pta.automaton().initial().index()));

    loop {
        // Blue fringe: successors of red states that are not red themselves.
        let mut blue: BTreeSet<usize> = BTreeSet::new();
        let red_snapshot: Vec<usize> = red.iter().copied().collect();
        for &r in &red_snapshot {
            for (_, targets) in automaton.outgoing(r) {
                for t in targets {
                    let rep = automaton.find(t);
                    if !red.contains(&rep) {
                        blue.insert(rep);
                    }
                }
            }
        }
        let Some(&candidate) = blue.iter().next() else {
            break;
        };

        // Score the candidate against every red state.
        let mut best: Option<(usize, usize)> = None; // (score, red state)
        for &r in &red_snapshot {
            let score = merge_score(&mut automaton, r, candidate, total_states);
            if best.map_or(true, |(s, _)| score > s) {
                best = Some((score, r));
            }
        }
        match best {
            Some((score, r)) if score >= min_score => {
                automaton.merge(r, candidate);
                // Normalise the red set after folding.
                red = red.iter().map(|&s| automaton.find(s)).collect();
            }
            _ => {
                red.insert(candidate);
            }
        }
    }
    automaton.to_nfa()
}

/// The EDSM evidence score: how many state pairs would be folded together by
/// merging `red` and `blue` (computed on a scratch copy so the hypothesis is
/// untouched).
fn merge_score(
    automaton: &mut MergeAutomaton,
    red: usize,
    blue: usize,
    total_states: usize,
) -> usize {
    let mut scratch = automaton.clone();
    let before = scratch.num_states();
    scratch.merge(red, blue);
    let after = scratch.num_states();
    debug_assert!(before <= total_states);
    before - after
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(events: &[&str]) -> Vec<String> {
        events.iter().map(|e| (*e).to_owned()).collect()
    }

    #[test]
    fn repetitive_trace_collapses() {
        let pta = Pta::from_sequences(&[seq(&[
            "a", "b", "a", "b", "a", "b", "a", "b", "a", "b", "a", "b",
        ])]);
        let model = edsm(&pta, 2);
        assert!(model.num_states() < pta.automaton().num_states());
        assert!(model.accepts(&seq(&["a", "b", "a", "b"])));
    }

    #[test]
    fn training_sequences_remain_accepted() {
        let sequences = vec![
            seq(&["w", "w", "r", "r", "reset", "w", "r", "reset"]),
            seq(&["w", "r", "reset", "w", "w", "r", "r", "reset"]),
        ];
        let pta = Pta::from_sequences(&sequences);
        let model = edsm(&pta, 1);
        for sequence in &sequences {
            assert!(model.accepts(sequence));
        }
    }

    #[test]
    fn high_threshold_keeps_more_states() {
        let sequence = seq(&["a", "b", "c", "a", "b", "c", "a", "b", "c"]);
        let pta = Pta::from_sequences(&[sequence]);
        let permissive = edsm(&pta, 1);
        let strict = edsm(&pta, 50);
        assert!(permissive.num_states() <= strict.num_states());
        // With an unreachable threshold nothing merges: the PTA comes back.
        assert_eq!(strict.num_states(), pta.automaton().num_states());
    }

    #[test]
    fn deterministic_output_on_deterministic_input() {
        let pta = Pta::from_sequences(&[seq(&["x", "y", "x", "y", "x", "y"])]);
        let model = edsm(&pta, 1);
        assert!(model.is_deterministic());
    }
}
