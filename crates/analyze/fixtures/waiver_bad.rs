//! Waiver fixture: a waiver without a reason is rejected and does not
//! suppress the finding under it.
use std::collections::HashMap;

pub fn order_leaks(map: &HashMap<u32, u32>) -> u32 {
    let mut total = 0;
    // tracelint: allow(nondet-iter)
    for value in map.values() {
        total ^= value;
    }
    total
}
