//! Positive fixture: a portfolio worker loop that never polls its flag.
pub struct Worker {
    budget: usize,
}

impl Worker {
    pub fn run(&mut self) {
        while self.budget > 0 {
            self.budget -= 1;
        }
    }
}
