//! Positive fixture: a lock guard held across a channel send.
use std::sync::{mpsc, Mutex};

pub fn publish(board: &Mutex<Vec<u32>>, tx: &mpsc::Sender<u32>) {
    let guard = board.lock().unwrap();
    tx.send(guard.len() as u32).ok();
}
