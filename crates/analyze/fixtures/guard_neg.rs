//! Negative fixture: the guard dies before the blocking call — via a
//! temporary, a scoped block, or an explicit drop.
use std::sync::{mpsc, Mutex};

pub fn snapshot_then_send(board: &Mutex<Vec<u32>>, tx: &mpsc::Sender<u32>) {
    let snapshot = board.lock().unwrap().len() as u32;
    tx.send(snapshot).ok();
}

pub fn scoped_then_send(board: &Mutex<Vec<u32>>, tx: &mpsc::Sender<u32>) {
    let len = {
        let guard = board.lock().unwrap();
        guard.len() as u32
    };
    tx.send(len).ok();
}

pub fn dropped_then_send(board: &Mutex<Vec<u32>>, tx: &mpsc::Sender<u32>) {
    let guard = board.lock().unwrap();
    let len = guard.len() as u32;
    drop(guard);
    tx.send(len).ok();
}
