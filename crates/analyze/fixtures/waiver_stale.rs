//! Waiver fixture: a waiver that suppresses nothing must itself fail.
// tracelint: allow(nondet-iter, nothing here iterates a hash map any more)
pub fn quiet() -> u32 {
    7
}
