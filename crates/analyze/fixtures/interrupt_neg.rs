//! Negative fixture: every top-level loop checks the interrupt flag.
use std::sync::atomic::{AtomicBool, Ordering};

pub struct Worker {
    budget: usize,
    interrupted: AtomicBool,
}

impl Worker {
    pub fn run(&mut self) {
        while self.budget > 0 {
            if self.is_interrupted() {
                return;
            }
            self.budget -= 1;
        }
        loop {
            if self.is_interrupted() {
                break;
            }
        }
    }

    fn is_interrupted(&self) -> bool {
        self.interrupted.load(Ordering::Relaxed)
    }
}
