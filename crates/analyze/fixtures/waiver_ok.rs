//! Waiver fixture: a real finding suppressed by a justified waiver.
use std::collections::HashMap;

pub fn scatter(map: HashMap<usize, u32>, out: &mut [u32]) {
    // tracelint: allow(nondet-iter, every entry lands in the slot named by its key, so visit order cannot reach the output)
    for (slot, value) in map.into_iter() {
        if let Some(cell) = out.get_mut(slot) {
            *cell = value;
        }
    }
}
