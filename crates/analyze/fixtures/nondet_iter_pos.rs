//! Positive fixture: hash iteration whose order reaches the output.
use std::collections::HashMap;

pub fn order_leaks(map: &HashMap<u32, u32>) -> Vec<u32> {
    let mut out = Vec::new();
    for (key, value) in map.iter() {
        out.push(key + value);
    }
    out
}
