//! Positive fixture: a manifest-listed hot function that allocates.
pub struct Hot {
    scratch: Vec<u32>,
}

impl Hot {
    pub fn step(&mut self, values: &[u32]) {
        let staged = vec![0u32; 4];
        self.scratch = values.to_vec();
        let _ = staged;
    }
}
