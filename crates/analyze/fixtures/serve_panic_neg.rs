//! Negative fixture: the same logic with per-stream error handling, plus
//! a test module where panicking assertions are expected and fine.
pub fn verdict(payload: &str, buckets: &[u64]) -> Option<u64> {
    let first = payload.split(',').next()?;
    let parsed: u64 = first.parse().ok()?;
    buckets.get(parsed as usize).copied()
}

#[cfg(test)]
mod tests {
    use super::verdict;

    #[test]
    fn unwrap_in_tests_is_fine() {
        let buckets = [1u64, 2, 3];
        assert_eq!(verdict("1", &buckets).unwrap(), 2);
        assert!(verdict("9", &buckets).is_none());
    }
}
