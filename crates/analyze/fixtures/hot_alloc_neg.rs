//! Negative fixture: the hot function reuses storage; a cold sibling may
//! allocate freely.
pub struct Hot {
    scratch: [u32; 4],
    cursor: usize,
}

impl Hot {
    pub fn step(&mut self, value: u32) {
        self.cursor = (self.cursor + 1) % self.scratch.len();
        if let Some(slot) = self.scratch.get_mut(self.cursor) {
            *slot = value;
        }
    }

    pub fn cold(&self) -> Vec<u32> {
        self.scratch.to_vec()
    }
}
