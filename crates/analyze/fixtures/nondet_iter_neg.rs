//! Negative fixture: hash access that is order-insensitive or sorted.
use std::collections::{BTreeMap, HashMap, HashSet};

pub fn sorted(map: &HashMap<u32, u32>) -> Vec<u32> {
    let mut keys: Vec<u32> = map.keys().copied().collect();
    keys.sort_unstable();
    keys
}

pub fn reduction(map: &HashMap<u32, u32>) -> u32 {
    map.values().sum()
}

pub fn membership(set: &HashSet<u32>, needle: u32) -> bool {
    set.contains(&needle)
}

pub fn reordered(map: &HashMap<u32, u32>) -> BTreeMap<u32, u32> {
    map.iter().map(|(k, v)| (*k, *v)).collect::<BTreeMap<_, _>>()
}
