//! Positive fixture: request-path code with every panicking construct.
pub fn verdict(payload: &str, buckets: &[u64]) -> u64 {
    let first = payload.split(',').next().unwrap();
    let parsed: u64 = first.parse().expect("numeric field");
    if parsed > 64 {
        panic!("frame out of range");
    }
    buckets[parsed as usize]
}
