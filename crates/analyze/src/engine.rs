//! File walking, waiver application, and report formatting.
//!
//! The engine lexes and scopes each workspace `.rs` file, runs every rule,
//! then applies inline waivers. A waiver suppresses findings of its named
//! rule on the same line or the line directly below it; a waiver that
//! suppresses nothing is itself a finding (`stale-waiver`), as is a
//! manifest entry that no longer names a real function (`manifest-stale`).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::config::Config;
use crate::lexer::{lex, TokenKind};
use crate::rules::{run_all, FileCtx, Finding, MatchedEntries, WAIVABLE_RULES};
use crate::scope::scope;

/// A finding located in a specific file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    pub file: String,
    pub line: u32,
    pub rule: String,
    pub function: Option<String>,
    pub message: String,
}

/// The result of analyzing a tree: all surviving findings plus counters.
#[derive(Debug, Default)]
pub struct Analysis {
    pub findings: Vec<Report>,
    pub files_scanned: usize,
    pub waivers_used: usize,
}

/// One inline waiver comment.
#[derive(Debug)]
struct Waiver {
    rule: String,
    line: u32,
    used: bool,
}

/// Directory names never descended into. `fixtures` holds the lint's own
/// deliberately-failing corpus; `tests` directories hold integration tests,
/// which every rule skips anyway.
const SKIP_DIRS: &[&str] = &[
    "target", "vendor", "fixtures", "tests", ".git", ".github", "corpus",
];

/// Analyzes every `.rs` file under `root` (skipping [`SKIP_DIRS`]).
pub fn analyze_root(root: &Path, config: &Config) -> io::Result<Analysis> {
    let mut files = Vec::new();
    collect_rust_files(root, &mut files)?;
    files.sort();

    let mut analysis = Analysis::default();
    let mut matched = MatchedEntries::default();
    for path in files {
        let src = fs::read_to_string(&path)?;
        let rel = relative_path(root, &path);
        analysis.files_scanned += 1;
        let (mut findings, used) = analyze_source(&rel, &src, config, &mut matched);
        analysis.waivers_used += used;
        analysis.findings.append(&mut findings);
    }

    // Manifest hygiene: every listed function must still exist somewhere.
    for entry in &config.hot_functions {
        if !matched.hot.contains(entry) {
            analysis.findings.push(Report {
                file: "tracelint.conf".to_string(),
                line: 0,
                rule: "manifest-stale".to_string(),
                function: Some(entry.clone()),
                message: format!(
                    "[hot-path-alloc] entry `{entry}` matches no function in the \
                     scanned tree; fix or remove it"
                ),
            });
        }
    }
    for entry in &config.interrupt_functions {
        if !matched.interrupt.contains(entry) {
            analysis.findings.push(Report {
                file: "tracelint.conf".to_string(),
                line: 0,
                rule: "manifest-stale".to_string(),
                function: Some(entry.clone()),
                message: format!(
                    "[interrupt-poll] entry `{entry}` matches no function in the \
                     scanned tree; fix or remove it"
                ),
            });
        }
    }

    analysis
        .findings
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    Ok(analysis)
}

/// Analyzes one file's source. Returns the surviving findings and how many
/// waivers were consumed. Public so fixture tests can drive single files.
pub fn analyze_source(
    rel_path: &str,
    src: &str,
    config: &Config,
    matched: &mut MatchedEntries,
) -> (Vec<Report>, usize) {
    let tokens = lex(src);
    let scopes = scope(src, &tokens, false);
    let ctx = FileCtx {
        src,
        tokens: &tokens,
        scopes: &scopes,
        rel_path,
        config,
    };
    let (mut waivers, mut waiver_findings) = parse_waivers(src, &tokens);
    let raw = run_all(&ctx, matched);

    let mut surviving: Vec<Finding> = Vec::new();
    for finding in raw {
        let waived = waivers.iter_mut().any(|w| {
            let applies =
                w.rule == finding.rule && (w.line == finding.line || w.line + 1 == finding.line);
            if applies {
                w.used = true;
            }
            applies
        });
        if !waived {
            surviving.push(finding);
        }
    }
    let used = waivers.iter().filter(|w| w.used).count();
    for waiver in &waivers {
        if !waiver.used {
            waiver_findings.push(Finding {
                rule: "stale-waiver",
                line: waiver.line,
                function: None,
                message: format!(
                    "waiver for `{}` suppresses nothing; remove it so waivers stay \
                     trustworthy",
                    waiver.rule
                ),
            });
        }
    }
    surviving.append(&mut waiver_findings);

    let reports = surviving
        .into_iter()
        .map(|f| Report {
            file: rel_path.to_string(),
            line: f.line,
            rule: f.rule.to_string(),
            function: f.function,
            message: f.message,
        })
        .collect();
    (reports, used)
}

/// Extracts `tracelint: allow(rule, reason)` waivers from comment tokens.
/// Malformed waivers (no reason, unknown rule) become `waiver-syntax`
/// findings rather than silently suppressing nothing.
fn parse_waivers(src: &str, tokens: &[crate::lexer::Token]) -> (Vec<Waiver>, Vec<Finding>) {
    let mut waivers = Vec::new();
    let mut findings = Vec::new();
    for tok in tokens {
        if tok.kind != TokenKind::Comment {
            continue;
        }
        // Only a comment whose body *starts* with the marker is a waiver;
        // prose that merely mentions the syntax (docs, rule messages) is not.
        let body = tok
            .text(src)
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim_start_matches('!')
            .trim_start();
        let Some(rest) = body.strip_prefix("tracelint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let mut bad = |message: String| {
            findings.push(Finding {
                rule: "waiver-syntax",
                line: tok.line,
                function: None,
                message,
            });
        };
        let Some(args) = rest.strip_prefix("allow(") else {
            bad(format!(
                "malformed tracelint comment; expected `tracelint: allow(rule, reason)`, \
                 got {rest:?}"
            ));
            continue;
        };
        let Some(close) = args.rfind(')') else {
            bad("unterminated waiver; expected `tracelint: allow(rule, reason)`".to_string());
            continue;
        };
        let inner = &args[..close];
        let Some((rule, reason)) = inner.split_once(',') else {
            bad(format!(
                "waiver for `{inner}` carries no reason; every waiver must say why \
                 the invariant holds anyway"
            ));
            continue;
        };
        let rule = rule.trim();
        let reason = reason.trim();
        if !WAIVABLE_RULES.contains(&rule) {
            bad(format!(
                "unknown rule `{rule}` in waiver; expected one of {WAIVABLE_RULES:?}"
            ));
            continue;
        }
        if reason.is_empty() {
            bad(format!(
                "waiver for `{rule}` carries an empty reason; every waiver must say \
                 why the invariant holds anyway"
            ));
            continue;
        }
        waivers.push(Waiver {
            rule: rule.to_string(),
            line: tok.line,
            used: false,
        });
    }
    (waivers, findings)
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rust_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

// ------------------------------------------------------------- reporting --

/// Renders findings as `file:line: [rule] message` lines plus a summary.
pub fn render_text(analysis: &Analysis) -> String {
    let mut out = String::new();
    for f in &analysis.findings {
        let location = if f.line > 0 {
            format!("{}:{}", f.file, f.line)
        } else {
            f.file.clone()
        };
        let in_fn = match &f.function {
            Some(name) => format!(" (in `{name}`)"),
            None => String::new(),
        };
        out.push_str(&format!(
            "{location}: [{rule}]{in_fn} {message}\n",
            rule = f.rule,
            message = f.message
        ));
    }
    out.push_str(&format!(
        "tracelint: {} finding(s) across {} file(s), {} waiver(s) in use\n",
        analysis.findings.len(),
        analysis.files_scanned,
        analysis.waivers_used
    ));
    out
}

/// Renders the analysis as JSON (hand-rolled; the vendored serde stub has
/// no serializer, same approach as `crates/bench`'s report writer).
pub fn render_json(analysis: &Analysis) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"files_scanned\": {},\n  \"waivers_used\": {},\n",
        analysis.files_scanned, analysis.waivers_used
    ));
    out.push_str("  \"findings\": [");
    for (i, f) in analysis.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!(
            "\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", ",
            escape_json(&f.file),
            f.line,
            escape_json(&f.rule)
        ));
        match &f.function {
            Some(name) => out.push_str(&format!("\"function\": \"{}\", ", escape_json(name))),
            None => out.push_str("\"function\": null, "),
        }
        out.push_str(&format!("\"message\": \"{}\"}}", escape_json(&f.message)));
    }
    if !analysis.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serve_config() -> Config {
        Config {
            panic_paths: vec!["crates/serve/src".to_string()],
            ..Config::default()
        }
    }

    #[test]
    fn waiver_suppresses_a_finding_and_counts_as_used() {
        let src = "fn f() {\n\
                   // tracelint: allow(serve-panic, demo reason)\n\
                   let x = maybe().unwrap();\n}";
        let mut matched = MatchedEntries::default();
        let (findings, used) =
            analyze_source("crates/serve/src/x.rs", src, &serve_config(), &mut matched);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(used, 1);
    }

    #[test]
    fn waiver_on_the_same_line_works() {
        let src = "fn f() { let x = maybe().unwrap(); } // tracelint: allow(serve-panic, demo)\n";
        let mut matched = MatchedEntries::default();
        let (findings, used) =
            analyze_source("crates/serve/src/x.rs", src, &serve_config(), &mut matched);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(used, 1);
    }

    #[test]
    fn stale_waiver_is_a_finding() {
        let src = "// tracelint: allow(serve-panic, nothing here needs this)\nfn f() {}\n";
        let mut matched = MatchedEntries::default();
        let (findings, _) =
            analyze_source("crates/serve/src/x.rs", src, &serve_config(), &mut matched);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "stale-waiver");
    }

    #[test]
    fn waiver_without_reason_is_rejected() {
        let src = "fn f() {\n\
                   // tracelint: allow(serve-panic)\n\
                   let x = maybe().unwrap();\n}";
        let mut matched = MatchedEntries::default();
        let (findings, _) =
            analyze_source("crates/serve/src/x.rs", src, &serve_config(), &mut matched);
        assert!(findings.iter().any(|f| f.rule == "waiver-syntax"));
        assert!(findings.iter().any(|f| f.rule == "serve-panic"));
    }

    #[test]
    fn unknown_rule_in_waiver_is_rejected() {
        let src = "// tracelint: allow(made-up-rule, because)\nfn f() {}\n";
        let mut matched = MatchedEntries::default();
        let (findings, _) =
            analyze_source("crates/serve/src/x.rs", src, &serve_config(), &mut matched);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "waiver-syntax");
    }

    #[test]
    fn json_escapes_quotes_and_newlines() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn json_output_is_well_formed_for_empty_findings() {
        let analysis = Analysis {
            findings: Vec::new(),
            files_scanned: 3,
            waivers_used: 0,
        };
        let json = render_json(&analysis);
        assert!(json.contains("\"findings\": []"));
    }
}
