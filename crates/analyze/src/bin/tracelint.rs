//! `tracelint` — run the workspace lint rules and report findings.
//!
//! ```text
//! tracelint [--root DIR] [--config FILE] [--json [PATH]]
//! ```
//!
//! Exits 0 when the tree is clean, 1 when there are findings, 2 on usage
//! or I/O errors. `--json` writes a machine-readable findings report to
//! stdout (or to PATH), for the CI artifact.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use tracelearn_analyze::{analyze_root, render_json, render_text, Config};

struct Args {
    root: PathBuf,
    config: PathBuf,
    json: Option<JsonSink>,
}

enum JsonSink {
    Stdout,
    File(PathBuf),
}

fn usage() -> &'static str {
    "usage: tracelint [--root DIR] [--config FILE] [--json [PATH]]\n\
     \n\
     Runs the tracelearn workspace lints (see docs/lints.md). DIR defaults\n\
     to the current directory; FILE defaults to DIR/tracelint.conf."
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut root: Option<PathBuf> = None;
    let mut config: Option<PathBuf> = None;
    let mut json: Option<JsonSink> = None;
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--root" => {
                let value = argv.next().ok_or("--root needs a value")?;
                root = Some(PathBuf::from(value));
            }
            "--config" => {
                let value = argv.next().ok_or("--config needs a value")?;
                config = Some(PathBuf::from(value));
            }
            "--json" => {
                // An optional PATH operand: anything not starting with `--`.
                json = Some(JsonSink::Stdout);
                // Peeking is awkward with a plain iterator; accept the form
                // `--json=PATH` for a file sink instead.
            }
            other => {
                if let Some(path) = other.strip_prefix("--json=") {
                    json = Some(JsonSink::File(PathBuf::from(path)));
                } else if other == "--help" || other == "-h" {
                    return Err(usage().to_string());
                } else {
                    return Err(format!("unknown flag {other:?}\n\n{}", usage()));
                }
            }
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));
    let config = config.unwrap_or_else(|| root.join("tracelint.conf"));
    Ok(Args { root, config, json })
}

fn run(args: &Args) -> Result<bool, String> {
    let manifest = fs::read_to_string(&args.config)
        .map_err(|e| format!("cannot read {}: {e}", args.config.display()))?;
    let config = Config::parse(&manifest).map_err(|e| e.to_string())?;
    let analysis = analyze_root(&args.root, &config).map_err(|e| format!("scan failed: {e}"))?;

    match &args.json {
        Some(JsonSink::Stdout) => print!("{}", render_json(&analysis)),
        Some(JsonSink::File(path)) => {
            fs::write(path, render_json(&analysis))
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            eprint!("{}", render_text(&analysis));
        }
        None => print!("{}", render_text(&analysis)),
    }
    Ok(analysis.findings.is_empty())
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("tracelint: {message}");
            ExitCode::from(2)
        }
    }
}
