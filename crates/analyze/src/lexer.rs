//! A minimal Rust lexer: just enough structure for lint rules.
//!
//! The lexer classifies a source file into identifiers, literals, comments,
//! and single-character punctuation. It exists so the rules never match
//! inside string literals or comments, and so the scoping pass can track
//! braces reliably. It is deliberately lossy where the rules don't care:
//! multi-character operators come out as adjacent punctuation tokens
//! (`::` is two `:` tokens) and numeric literals are one opaque token.

/// The classification of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unwrap`, `HashMap`, ...).
    Ident,
    /// A lifetime such as `'a` or `'static` (quote included in the span).
    Lifetime,
    /// Integer or float literal (possibly split around `.` — rules don't care).
    Number,
    /// String, raw string, byte string, or char literal, quotes included.
    Literal,
    /// `//` or `/*` comment, markers included. Doc comments included.
    Comment,
    /// A single punctuation character; `ch` holds it.
    Punct(char),
}

/// One token: a classification plus its span in the source.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    pub kind: TokenKind,
    /// Byte offset of the first byte of the token.
    pub start: usize,
    /// Byte offset one past the last byte of the token.
    pub end: usize,
    /// 1-based line of the token's first byte.
    pub line: u32,
}

impl Token {
    /// The token's text, borrowed from the source it was lexed from.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// True when the token is the identifier `word`.
    pub fn is_ident(&self, src: &str, word: &str) -> bool {
        self.kind == TokenKind::Ident && self.text(src) == word
    }

    /// True when the token is the punctuation character `ch`.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct(ch)
    }
}

/// Lexes a whole file. Unterminated literals or comments simply run to the
/// end of the file; the lexer never fails.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let line = self.line;
            let b = self.bytes[self.pos];
            let kind = match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    if b == b'\n' {
                        self.line += 1;
                    }
                    self.pos += 1;
                    continue;
                }
                b'/' if self.peek(1) == Some(b'/') => {
                    self.take_line_comment();
                    TokenKind::Comment
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.take_block_comment();
                    TokenKind::Comment
                }
                b'"' => {
                    self.pos += 1;
                    self.take_string_body();
                    TokenKind::Literal
                }
                b'\'' => {
                    if self.take_char_or_lifetime() {
                        TokenKind::Literal
                    } else {
                        TokenKind::Lifetime
                    }
                }
                b'r' | b'b' if self.at_literal_prefix() => {
                    self.take_prefixed_literal();
                    TokenKind::Literal
                }
                _ if b.is_ascii_digit() => {
                    self.take_while(|c| c.is_ascii_alphanumeric() || c == b'_');
                    TokenKind::Number
                }
                _ if b == b'_' || b.is_ascii_alphabetic() || b >= 0x80 => {
                    self.take_while(|c| c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80);
                    TokenKind::Ident
                }
                _ => {
                    self.pos += 1;
                    TokenKind::Punct(b as char)
                }
            };
            self.tokens.push(Token {
                kind,
                start,
                end: self.pos,
                line,
            });
        }
        self.tokens
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn take_while(&mut self, keep: impl Fn(u8) -> bool) {
        while self.pos < self.bytes.len() && keep(self.bytes[self.pos]) {
            self.pos += 1;
        }
    }

    fn take_line_comment(&mut self) {
        self.take_while(|c| c != b'\n');
    }

    fn take_block_comment(&mut self) {
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            match (self.bytes[self.pos], self.peek(1)) {
                (b'/', Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (b'*', Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (b'\n', _) => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// Consumes the body of a non-raw string after the opening quote.
    fn take_string_body(&mut self) {
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.pos = (self.pos + 2).min(self.bytes.len()),
                b'"' => {
                    self.pos += 1;
                    return;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// At a `'`: consumes either a char literal (returns true) or a
    /// lifetime (returns false).
    fn take_char_or_lifetime(&mut self) -> bool {
        // A char literal is `'` + (escape | one char) + `'`. A lifetime is
        // `'` + ident with no closing quote. `'a'` is a char; `'a` is a
        // lifetime. Peek past the next character for the closing quote.
        let next = self.peek(1);
        let is_char = match next {
            Some(b'\\') => true,
            Some(c) if c == b'_' || c.is_ascii_alphanumeric() => {
                // `'x'` char vs `'x` / `'static` lifetime: a char literal
                // has exactly one code point then `'`.
                let mut idx = self.pos + 1;
                if let Some(ch) = self.src[idx..].chars().next() {
                    idx += ch.len_utf8();
                }
                self.bytes.get(idx) == Some(&b'\'')
            }
            Some(_) => true, // `'('`, `' '`, unicode punctuation chars
            None => false,
        };
        if is_char {
            self.pos += 1; // opening quote
            if self.peek(0) == Some(b'\\') {
                self.pos += 2;
                // Escapes like \x7f or \u{...}: just scan to the close.
                self.take_while(|c| c != b'\'' && c != b'\n');
            } else if let Some(ch) = self.src[self.pos..].chars().next() {
                self.pos += ch.len_utf8();
            }
            if self.peek(0) == Some(b'\'') {
                self.pos += 1;
            }
            true
        } else {
            self.pos += 1;
            self.take_while(|c| c == b'_' || c.is_ascii_alphanumeric());
            false
        }
    }

    /// True at `r"`, `r#`, `b"`, `b'`, `br"`, `br#`, `rb` is not Rust.
    fn at_literal_prefix(&self) -> bool {
        match (self.bytes[self.pos], self.peek(1)) {
            (b'r', Some(b'"')) | (b'r', Some(b'#')) => self.raw_hashes_then_quote(1),
            (b'b', Some(b'"')) | (b'b', Some(b'\'')) => true,
            (b'b', Some(b'r')) => self.raw_hashes_then_quote(2),
            _ => false,
        }
    }

    /// From `self.pos + offset`, is there a run of `#` then a `"`?
    fn raw_hashes_then_quote(&self, offset: usize) -> bool {
        let mut idx = self.pos + offset;
        while self.bytes.get(idx) == Some(&b'#') {
            idx += 1;
        }
        self.bytes.get(idx) == Some(&b'"')
    }

    /// Consumes `r"..."`, `r#"..."#`, `b"..."`, `b'...'`, `br#"..."#`.
    fn take_prefixed_literal(&mut self) {
        let raw = self.bytes[self.pos] == b'r' || self.peek(1) == Some(b'r');
        self.pos += if self.peek(1) == Some(b'r') { 2 } else { 1 };
        if raw {
            let mut hashes = 0usize;
            while self.peek(0) == Some(b'#') {
                hashes += 1;
                self.pos += 1;
            }
            self.pos += 1; // opening quote
            while self.pos < self.bytes.len() {
                if self.bytes[self.pos] == b'\n' {
                    self.line += 1;
                } else if self.bytes[self.pos] == b'"' {
                    let mut idx = self.pos + 1;
                    let mut seen = 0usize;
                    while seen < hashes && self.bytes.get(idx) == Some(&b'#') {
                        seen += 1;
                        idx += 1;
                    }
                    if seen == hashes {
                        self.pos = idx;
                        return;
                    }
                }
                self.pos += 1;
            }
        } else if self.peek(0) == Some(b'\'') {
            // Byte char literal `b'x'` / `b'\n'`.
            self.pos += 1;
            if self.peek(0) == Some(b'\\') {
                self.pos += 2;
                self.take_while(|c| c != b'\'' && c != b'\n');
            } else {
                self.pos += 1;
            }
            if self.peek(0) == Some(b'\'') {
                self.pos += 1;
            }
        } else {
            self.pos += 1; // opening quote of b"..."
            self.take_string_body();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn idents_and_punct() {
        let toks = kinds("fn foo() -> u32 { 0 }");
        assert_eq!(toks[0], (TokenKind::Ident, "fn".to_string()));
        assert_eq!(toks[1], (TokenKind::Ident, "foo".to_string()));
        assert!(toks.iter().any(|t| t.0 == TokenKind::Punct('{')));
    }

    #[test]
    fn comments_are_single_tokens() {
        let src = "a // unwrap() inside comment\nb /* block\nstill */ c";
        let toks = kinds(src);
        let idents: Vec<_> = toks
            .iter()
            .filter(|t| t.0 == TokenKind::Ident)
            .map(|t| t.1.as_str())
            .collect();
        assert_eq!(idents, ["a", "b", "c"]);
        assert_eq!(toks.iter().filter(|t| t.0 == TokenKind::Comment).count(), 2);
    }

    #[test]
    fn strings_hide_their_contents() {
        let src = r#"let x = "fake.unwrap() { }"; y"#;
        let toks = kinds(src);
        assert!(!toks
            .iter()
            .any(|t| t.0 == TokenKind::Ident && t.1 == "unwrap"));
        assert!(toks.iter().any(|t| t.0 == TokenKind::Ident && t.1 == "y"));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let src = r###"let x = r#"quote " inside"#; done"###;
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|t| t.0 == TokenKind::Ident && t.1 == "done"));
    }

    #[test]
    fn char_vs_lifetime() {
        let src = "let c = 'a'; fn f<'a>(x: &'a str) {} let nl = '\\n';";
        let toks = kinds(src);
        let lits: Vec<_> = toks
            .iter()
            .filter(|t| t.0 == TokenKind::Literal)
            .map(|t| t.1.as_str())
            .collect();
        assert_eq!(lits, ["'a'", "'\\n'"]);
        assert_eq!(
            toks.iter().filter(|t| t.0 == TokenKind::Lifetime).count(),
            2
        );
    }

    #[test]
    fn lines_are_tracked_through_multiline_tokens() {
        let src = "a\n/* x\ny */\nb";
        let toks = lex(src);
        let b = toks.last().unwrap();
        assert_eq!(b.text(src), "b");
        assert_eq!(b.line, 4);
    }

    #[test]
    fn byte_literals() {
        let src = "m(b'x', b\"bytes\", br#\"raw \" bytes\"#); tail";
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|t| t.0 == TokenKind::Ident && t.1 == "tail"));
        assert_eq!(toks.iter().filter(|t| t.0 == TokenKind::Literal).count(), 3);
    }
}
