//! The five tracelint rules.
//!
//! Each rule walks the token stream of one file with its scope map and
//! returns findings. Heuristics are tuned to the idioms actually used in
//! this workspace; where a rule cannot prove a site safe, the fix is either
//! to restructure the code or to carry an inline waiver with a reason
//! (see `docs/lints.md`).

use std::collections::BTreeSet;

use crate::config::Config;
use crate::lexer::{Token, TokenKind};
use crate::scope::ScopeMap;

/// One lint finding in one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub line: u32,
    /// The enclosing function, when known.
    pub function: Option<String>,
    pub message: String,
}

/// Rule names that an inline waiver may name.
pub const WAIVABLE_RULES: &[&str] = &[
    "nondet-iter",
    "hot-path-alloc",
    "serve-panic",
    "guard-across-call",
    "interrupt-poll",
];

/// Everything a rule needs to inspect one file.
pub struct FileCtx<'a> {
    pub src: &'a str,
    pub tokens: &'a [Token],
    pub scopes: &'a ScopeMap,
    /// Repo-relative path with `/` separators.
    pub rel_path: &'a str,
    pub config: &'a Config,
}

/// Manifest entries that matched a function somewhere in the scanned tree;
/// entries that never match are reported as stale by the engine.
#[derive(Debug, Default)]
pub struct MatchedEntries {
    pub hot: BTreeSet<String>,
    pub interrupt: BTreeSet<String>,
}

impl<'a> FileCtx<'a> {
    fn ident(&self, idx: usize) -> Option<&'a str> {
        let tok = self.tokens.get(idx)?;
        (tok.kind == TokenKind::Ident).then(|| tok.text(self.src))
    }

    fn punct(&self, idx: usize, ch: char) -> bool {
        self.tokens.get(idx).is_some_and(|t| t.is_punct(ch))
    }

    fn line(&self, idx: usize) -> u32 {
        self.tokens.get(idx).map_or(0, |t| t.line)
    }

    /// Brace depth before each token (precomputed by the engine walk).
    fn depths(&self) -> Vec<u32> {
        let mut depths = Vec::with_capacity(self.tokens.len());
        let mut depth = 0u32;
        for tok in self.tokens {
            depths.push(depth);
            if tok.is_punct('{') {
                depth += 1;
            } else if tok.is_punct('}') {
                depth = depth.saturating_sub(1);
            }
        }
        depths
    }
}

/// Runs every rule over one file.
pub fn run_all(ctx: &FileCtx<'_>, matched: &mut MatchedEntries) -> Vec<Finding> {
    let mut findings = Vec::new();
    findings.extend(nondet_iter(ctx));
    findings.extend(hot_path_alloc(ctx, matched));
    findings.extend(serve_panic(ctx));
    findings.extend(guard_across_call(ctx));
    findings.extend(interrupt_poll(ctx, matched));
    findings
}

// ---------------------------------------------------------------- rule 1 --

/// Hash-iteration methods whose visit order is unspecified.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Identifiers that make an iteration order-insensitive: either the result
/// is sorted/re-collected into an ordered structure, or the reduction is
/// commutative.
const ORDER_INSENSITIVE: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "all",
    "any",
    "count",
    "sum",
    "min",
    "max",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
];

/// Rule `nondet-iter`: in model-producing crates, iterating a `HashMap` /
/// `HashSet` is denied unless the site is provably order-insensitive.
/// Learned models must be byte-identical across runs and thread counts;
/// hash iteration order is the classic way that property silently breaks.
fn nondet_iter(ctx: &FileCtx<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    if !Config::path_matches(ctx.rel_path, &ctx.config.determinism_paths) {
        return findings;
    }
    let hash_names = collect_hash_names(ctx);
    if hash_names.is_empty() {
        return findings;
    }

    let mut flagged: BTreeSet<(u32, String)> = BTreeSet::new();
    for idx in 0..ctx.tokens.len() {
        if ctx.scopes.is_test(idx) {
            continue;
        }
        let Some(name) = ctx.ident(idx) else { continue };
        if name == "for" {
            // `for pat in <header> {` — flag any hash name in the header.
            if ctx.punct(idx + 1, '<') {
                continue; // `for<'a>` higher-ranked bound
            }
            let mut j = idx + 1;
            let mut paren = 0usize;
            while j < ctx.tokens.len() {
                let tok = &ctx.tokens[j];
                if tok.is_punct('(') || tok.is_punct('[') {
                    paren += 1;
                } else if tok.is_punct(')') || tok.is_punct(']') {
                    paren = paren.saturating_sub(1);
                } else if tok.is_punct('{') && paren == 0 {
                    break;
                } else if tok.kind == TokenKind::Ident {
                    let word = tok.text(ctx.src);
                    if hash_names.contains(word) && !is_exempt_range(ctx, idx + 1, j) {
                        flagged.insert((tok.line, word.to_string()));
                    }
                }
                j += 1;
            }
            continue;
        }
        if !hash_names.contains(name) {
            continue;
        }
        // `name.iter()` / `name.keys()` / ... (also `self.name.iter()`).
        if ctx.punct(idx + 1, '.') {
            if let Some(method) = ctx.ident(idx + 2) {
                if ITER_METHODS.contains(&method) && ctx.punct(idx + 3, '(') {
                    let (lo, hi) = statement_range(ctx, idx);
                    if !is_exempt_range(ctx, lo, hi) {
                        flagged.insert((ctx.line(idx), name.to_string()));
                    }
                }
            }
        }
    }

    for (line, name) in flagged {
        findings.push(Finding {
            rule: "nondet-iter",
            line,
            function: None,
            message: format!(
                "iteration over hash-ordered `{name}` in a model-producing crate; \
                 sort the result, switch to a BTree collection, or waive with a reason"
            ),
        });
    }
    findings
}

/// Names in this file that are bound to `HashMap` / `HashSet`, from type
/// annotations (`name: HashMap<...>`, including struct fields and fn
/// parameters) and constructor bindings (`name = HashMap::new()`).
fn collect_hash_names(ctx: &FileCtx<'_>) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for idx in 0..ctx.tokens.len() {
        let Some(name) = ctx.ident(idx) else { continue };
        if matches!(name, "HashMap" | "HashSet") {
            continue;
        }
        // `name : <type containing HashMap/HashSet>`
        if ctx.punct(idx + 1, ':') && !ctx.punct(idx + 2, ':') {
            let mut j = idx + 2;
            let mut angle = 0i32;
            while j < ctx.tokens.len() {
                let tok = &ctx.tokens[j];
                match tok.kind {
                    TokenKind::Punct('<') => angle += 1,
                    TokenKind::Punct('>') => {
                        let arrow = j > 0
                            && ctx.tokens[j - 1].is_punct('-')
                            && ctx.tokens[j - 1].end == tok.start;
                        if !arrow {
                            angle -= 1;
                            if angle < 0 {
                                break;
                            }
                        }
                    }
                    TokenKind::Punct(',')
                    | TokenKind::Punct(';')
                    | TokenKind::Punct('=')
                    | TokenKind::Punct(')')
                    | TokenKind::Punct('{')
                    | TokenKind::Punct('}')
                        if angle == 0 =>
                    {
                        break
                    }
                    TokenKind::Ident => {
                        let word = tok.text(ctx.src);
                        if matches!(word, "HashMap" | "HashSet") {
                            names.insert(name.to_string());
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // `name = HashMap::new()` / `HashSet::with_capacity(...)`
        if ctx.punct(idx + 1, '=') {
            if let Some(ty) = ctx.ident(idx + 2) {
                if matches!(ty, "HashMap" | "HashSet") {
                    names.insert(name.to_string());
                }
            }
        }
    }
    names
}

/// The statement around token `idx`: back to the previous `;`/`{`/`}`,
/// forward through at most one `;` (so `let v: Vec<_> = m.iter().collect();
/// v.sort();` sees the sort) stopping at any brace.
fn statement_range(ctx: &FileCtx<'_>, idx: usize) -> (usize, usize) {
    let mut lo = idx;
    while lo > 0 {
        let tok = &ctx.tokens[lo - 1];
        if tok.is_punct(';') || tok.is_punct('{') || tok.is_punct('}') {
            break;
        }
        lo -= 1;
    }
    let mut hi = idx;
    let mut semis = 0usize;
    while hi + 1 < ctx.tokens.len() {
        let tok = &ctx.tokens[hi + 1];
        if tok.is_punct('{') || tok.is_punct('}') {
            break;
        }
        if tok.is_punct(';') {
            semis += 1;
            if semis == 2 {
                break;
            }
        }
        hi += 1;
    }
    (lo, hi)
}

fn is_exempt_range(ctx: &FileCtx<'_>, lo: usize, hi: usize) -> bool {
    (lo..=hi.min(ctx.tokens.len().saturating_sub(1)))
        .filter_map(|i| ctx.ident(i))
        .any(|word| ORDER_INSENSITIVE.contains(&word))
}

// ---------------------------------------------------------------- rule 2 --

/// Method calls that heap-allocate.
const ALLOC_METHODS: &[&str] = &["clone", "to_vec", "to_string", "to_owned", "collect"];
/// Macros that heap-allocate.
const ALLOC_MACROS: &[&str] = &["format", "vec"];
/// `Type::constructor` pairs that heap-allocate.
const ALLOC_TYPES: &[&str] = &[
    "Vec", "String", "Box", "VecDeque", "HashMap", "HashSet", "BTreeMap", "BTreeSet",
];
const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from"];

/// Rule `hot-path-alloc`: functions listed in the `[hot-path-alloc]`
/// manifest section must not contain allocating constructs. The serving
/// and solving hot paths promise zero steady-state allocation per event;
/// this rule keeps a refactor from quietly reintroducing one.
fn hot_path_alloc(ctx: &FileCtx<'_>, matched: &mut MatchedEntries) -> Vec<Finding> {
    let mut findings = Vec::new();
    for span in ctx.scopes.functions() {
        if !ctx.config.hot_functions.contains(&span.qualified) {
            continue;
        }
        matched.hot.insert(span.qualified.clone());
        if span.is_test {
            continue;
        }
        for idx in span.body_open..=span.body_close.min(ctx.tokens.len() - 1) {
            let Some(word) = ctx.ident(idx) else { continue };
            let hit = if ALLOC_METHODS.contains(&word) && ctx.punct(idx + 1, '(') {
                Some(format!("`{word}()` allocates"))
            } else if ALLOC_MACROS.contains(&word) && ctx.punct(idx + 1, '!') {
                Some(format!("`{word}!` allocates"))
            } else if ALLOC_TYPES.contains(&word)
                && ctx.punct(idx + 1, ':')
                && ctx.punct(idx + 2, ':')
            {
                match ctx.ident(idx + 3) {
                    Some(ctor) if ALLOC_CTORS.contains(&ctor) => {
                        Some(format!("`{word}::{ctor}` allocates"))
                    }
                    _ => None,
                }
            } else {
                None
            };
            if let Some(what) = hit {
                findings.push(Finding {
                    rule: "hot-path-alloc",
                    line: ctx.line(idx),
                    function: Some(span.qualified.clone()),
                    message: format!(
                        "{what} inside hot function `{}`; hoist it out of the \
                         per-event path or waive with a reason",
                        span.qualified
                    ),
                });
            }
        }
    }
    findings
}

// ---------------------------------------------------------------- rule 3 --

/// Keywords that can directly precede `[` without it being an index.
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "in", "if", "else", "match", "return", "mut", "ref", "move", "box", "while", "for",
    "loop", "break", "continue", "unsafe", "async", "const", "static", "as", "dyn", "impl",
    "where", "pub", "fn", "use", "await",
];

/// Panicking macro names.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Rule `serve-panic`: under the `[serve-panic]` paths, non-test code must
/// not contain `unwrap()`, `expect()`, panicking macros, or slice/array
/// indexing. A long-running monitor degrades one stream on bad input; it
/// never takes the whole worker down.
fn serve_panic(ctx: &FileCtx<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    if !Config::path_matches(ctx.rel_path, &ctx.config.panic_paths) {
        return findings;
    }
    for idx in 0..ctx.tokens.len() {
        if ctx.scopes.is_test(idx) {
            continue;
        }
        let tok = &ctx.tokens[idx];
        match tok.kind {
            TokenKind::Ident => {
                let word = tok.text(ctx.src);
                if matches!(word, "unwrap" | "expect") && ctx.punct(idx + 1, '(') {
                    findings.push(Finding {
                        rule: "serve-panic",
                        line: tok.line,
                        function: ctx.scopes.function_at(idx).map(str::to_string),
                        message: format!(
                            "`{word}()` in serve request-path code; return a per-stream \
                             error verdict instead of panicking the worker"
                        ),
                    });
                } else if PANIC_MACROS.contains(&word) && ctx.punct(idx + 1, '!') {
                    findings.push(Finding {
                        rule: "serve-panic",
                        line: tok.line,
                        function: ctx.scopes.function_at(idx).map(str::to_string),
                        message: format!(
                            "`{word}!` in serve request-path code; emit an error line and \
                             close the stream instead"
                        ),
                    });
                }
            }
            TokenKind::Punct('[') if idx > 0 => {
                let prev = &ctx.tokens[idx - 1];
                let is_index = match prev.kind {
                    TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text(ctx.src)),
                    TokenKind::Punct(')') | TokenKind::Punct(']') => true,
                    _ => false,
                };
                if is_index {
                    findings.push(Finding {
                        rule: "serve-panic",
                        line: tok.line,
                        function: ctx.scopes.function_at(idx).map(str::to_string),
                        message: "slice indexing in serve request-path code can panic on a \
                                  malformed frame; use `.get()` and handle the miss"
                            .to_string(),
                    });
                }
            }
            _ => {}
        }
    }
    findings
}

// ---------------------------------------------------------------- rule 4 --

/// Blocking calls a lock guard must not be held across.
fn is_blocking_call(word: &str) -> bool {
    matches!(
        word,
        "send" | "try_send" | "send_timeout" | "recv" | "try_recv" | "recv_timeout"
    ) || word.starts_with("solve")
}

/// Rule `guard-across-call`: a `Mutex`/`RwLock` guard binding that stays
/// live across a channel `send`/`recv` or a SAT `solve*` call serialises
/// the portfolio (at best) or deadlocks it (at worst). Scope the guard to
/// a block, clone out what you need, or `drop(guard)` first.
fn guard_across_call(ctx: &FileCtx<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    let depths = ctx.depths();
    for idx in 0..ctx.tokens.len() {
        if ctx.scopes.is_test(idx) {
            continue;
        }
        let Some(word) = ctx.ident(idx) else { continue };
        if !matches!(word, "lock" | "read" | "write") {
            continue;
        }
        if idx == 0 || !ctx.tokens[idx - 1].is_punct('.') || !ctx.punct(idx + 1, '(') {
            continue;
        }
        // Find the end of the `.lock(...)` call, then walk the adapter
        // chain. Only `unwrap` / `expect` / `unwrap_or_else` / `?` keep it
        // a guard; anything else (`.clone()`, a method on the inner value)
        // means the temporary dies at the end of the statement.
        let Some(mut after) = skip_balanced(ctx, idx + 1, '(', ')') else {
            continue;
        };
        loop {
            if ctx.punct(after, '?') {
                after += 1;
                continue;
            }
            if ctx.punct(after, '.') {
                if let Some(method) = ctx.ident(after + 1) {
                    if matches!(method, "unwrap" | "expect" | "unwrap_or_else")
                        && ctx.punct(after + 2, '(')
                    {
                        match skip_balanced(ctx, after + 2, '(', ')') {
                            Some(next) => {
                                after = next;
                                continue;
                            }
                            None => break,
                        }
                    }
                }
            }
            break;
        }
        if !ctx.punct(after, ';') {
            continue; // expression or temporary, not a live binding
        }
        // The statement must be `let [mut] NAME = ...` for a trackable guard.
        let mut lo = idx;
        while lo > 0 {
            let tok = &ctx.tokens[lo - 1];
            if tok.is_punct(';') || tok.is_punct('{') || tok.is_punct('}') {
                break;
            }
            lo -= 1;
        }
        if ctx.ident(lo) != Some("let") {
            continue;
        }
        let mut name_idx = lo + 1;
        if ctx.ident(name_idx) == Some("mut") {
            name_idx += 1;
        }
        let Some(guard_name) = ctx.ident(name_idx) else {
            continue; // tuple or struct pattern; give up rather than guess
        };
        // Live range: from the `;` to the end of the enclosing block, or to
        // an explicit `drop(guard)`.
        let binding_depth = depths[idx];
        let mut j = after + 1;
        while j < ctx.tokens.len() && depths[j] >= binding_depth {
            if ctx.ident(j) == Some("drop")
                && ctx.punct(j + 1, '(')
                && ctx.ident(j + 2) == Some(guard_name)
                && ctx.punct(j + 3, ')')
            {
                break;
            }
            if let Some(call) = ctx.ident(j) {
                if is_blocking_call(call)
                    && j > 0
                    && ctx.tokens[j - 1].is_punct('.')
                    && ctx.punct(j + 1, '(')
                    && !ctx.scopes.is_test(j)
                {
                    findings.push(Finding {
                        rule: "guard-across-call",
                        line: ctx.tokens[j].line,
                        function: ctx.scopes.function_at(j).map(str::to_string),
                        message: format!(
                            "lock guard `{guard_name}` (bound on line {}) is still live \
                             across this `.{call}(` call; drop the guard or scope it to \
                             a block first",
                            ctx.line(idx)
                        ),
                    });
                    break; // one finding per guard is enough
                }
            }
            j += 1;
        }
    }
    findings
}

/// From an opening delimiter at `open`, returns the index just past its
/// matching close.
fn skip_balanced(ctx: &FileCtx<'_>, open: usize, lhs: char, rhs: char) -> Option<usize> {
    if !ctx.punct(open, lhs) {
        return None;
    }
    let mut depth = 0usize;
    let mut i = open;
    while i < ctx.tokens.len() {
        if ctx.punct(i, lhs) {
            depth += 1;
        } else if ctx.punct(i, rhs) {
            depth -= 1;
            if depth == 0 {
                return Some(i + 1);
            }
        }
        i += 1;
    }
    None
}

// ---------------------------------------------------------------- rule 5 --

/// Identifier fragments that count as polling an interrupt flag.
fn is_poll_ident(word: &str) -> bool {
    let lower = word.to_ascii_lowercase();
    lower.contains("interrupt") || lower.contains("cancel")
}

/// Rule `interrupt-poll`: functions listed in the `[interrupt-poll]`
/// manifest section are portfolio workers or solver inner loops; every
/// top-level `loop`/`while` in them must consult an interrupt/cancel flag,
/// or a losing worker runs to completion after the portfolio already won.
fn interrupt_poll(ctx: &FileCtx<'_>, matched: &mut MatchedEntries) -> Vec<Finding> {
    let mut findings = Vec::new();
    for span in ctx.scopes.functions() {
        if !ctx.config.interrupt_functions.contains(&span.qualified) {
            continue;
        }
        matched.interrupt.insert(span.qualified.clone());
        if span.is_test {
            continue;
        }
        let close = span.body_close.min(ctx.tokens.len() - 1);
        let mut rel_depth = 0i32;
        let mut idx = span.body_open + 1;
        let mut loops = 0usize;
        while idx < close {
            let tok = &ctx.tokens[idx];
            if tok.is_punct('{') {
                rel_depth += 1;
            } else if tok.is_punct('}') {
                rel_depth -= 1;
            } else if rel_depth == 0 && tok.kind == TokenKind::Ident {
                let word = tok.text(ctx.src);
                if matches!(word, "loop" | "while") {
                    loops += 1;
                    // Find the loop body `{` (immediately next for `loop`,
                    // after the condition for `while`), then scan it.
                    let mut open = idx + 1;
                    let mut paren = 0usize;
                    while open < close {
                        if ctx.punct(open, '(') {
                            paren += 1;
                        } else if ctx.punct(open, ')') {
                            paren = paren.saturating_sub(1);
                        } else if ctx.punct(open, '{') && paren == 0 {
                            break;
                        }
                        open += 1;
                    }
                    let Some(end) = skip_balanced(ctx, open, '{', '}') else {
                        break;
                    };
                    let polls = (open..end).filter_map(|i| ctx.ident(i)).any(is_poll_ident);
                    if !polls {
                        findings.push(Finding {
                            rule: "interrupt-poll",
                            line: tok.line,
                            function: Some(span.qualified.clone()),
                            message: format!(
                                "top-level `{word}` in `{}` never polls an interrupt/cancel \
                                 flag; a portfolio loser would run to completion",
                                span.qualified
                            ),
                        });
                    }
                    // Skip past this loop body; nested loops inherit the
                    // poll obligation from the outer scan.
                    idx = end;
                    rel_depth = 0;
                    continue;
                }
            }
            idx += 1;
        }
        if loops == 0 {
            findings.push(Finding {
                rule: "interrupt-poll",
                line: span.line,
                function: Some(span.qualified.clone()),
                message: format!(
                    "`{}` is listed in [interrupt-poll] but has no top-level loop; \
                     update tracelint.conf",
                    span.qualified
                ),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scope::scope;

    fn check(rel_path: &str, src: &str, config: &Config) -> Vec<Finding> {
        let tokens = lex(src);
        let scopes = scope(src, &tokens, false);
        let ctx = FileCtx {
            src,
            tokens: &tokens,
            scopes: &scopes,
            rel_path,
            config,
        };
        let mut matched = MatchedEntries::default();
        run_all(&ctx, &mut matched)
    }

    fn det_config() -> Config {
        Config {
            determinism_paths: vec!["crates/core/src".to_string()],
            ..Config::default()
        }
    }

    #[test]
    fn hash_iteration_fires_only_in_listed_paths() {
        let src = "fn f(m: &HashMap<u32, u32>) { for (k, v) in m { use_it(k, v); } }";
        let config = det_config();
        assert_eq!(check("crates/core/src/x.rs", src, &config).len(), 1);
        assert_eq!(check("crates/serve/src/x.rs", src, &config).len(), 0);
    }

    #[test]
    fn order_insensitive_reductions_are_exempt() {
        let src = "fn f(m: &HashMap<u32, u32>) -> bool { m.values().all(|v| *v < 3) }";
        assert_eq!(check("crates/core/src/x.rs", src, &det_config()).len(), 0);
    }

    #[test]
    fn collect_then_sort_is_exempt() {
        let src = "fn f(m: &HashMap<u32, u32>) -> Vec<u32> {\n\
                   let mut v: Vec<u32> = m.keys().copied().collect(); v.sort(); v }";
        assert_eq!(check("crates/core/src/x.rs", src, &det_config()).len(), 0);
    }

    #[test]
    fn hot_function_allocation_is_flagged() {
        let config = Config {
            hot_functions: vec!["Tracker::push".to_string()],
            ..Config::default()
        };
        let src = "impl Tracker { fn push(&mut self) { self.scratch = Vec::new(); } \
                   fn cold(&mut self) { self.scratch = Vec::new(); } }";
        let findings = check("crates/automaton/src/x.rs", src, &config);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].function.as_deref(), Some("Tracker::push"));
    }

    #[test]
    fn serve_panic_catches_unwrap_and_indexing() {
        let config = Config {
            panic_paths: vec!["crates/serve/src".to_string()],
            ..Config::default()
        };
        let src = "fn f(v: &[u32]) -> u32 { let x = maybe().unwrap(); v[0] + x }";
        let findings = check("crates/serve/src/x.rs", src, &config);
        assert_eq!(findings.len(), 2);
        let src_ok = "fn f(v: &[u32]) -> Option<u32> { v.first().copied() }";
        assert_eq!(check("crates/serve/src/x.rs", src_ok, &config).len(), 0);
    }

    #[test]
    fn guard_across_send_is_flagged_but_scoped_guard_is_not() {
        let config = Config::default();
        let bad = "fn f() { let guard = shared.lock().unwrap(); tx.send(1); }";
        assert_eq!(check("crates/core/src/x.rs", bad, &config).len(), 1);
        let dropped = "fn f() { let guard = shared.lock().unwrap(); drop(guard); tx.send(1); }";
        assert_eq!(check("crates/core/src/x.rs", dropped, &config).len(), 0);
        let temporary = "fn f() { let snap = shared.lock().unwrap().clone(); tx.send(snap); }";
        assert_eq!(check("crates/core/src/x.rs", temporary, &config).len(), 0);
        let scoped =
            "fn f() { { let guard = shared.lock().unwrap(); use_it(&guard); } tx.send(1); }";
        assert_eq!(check("crates/core/src/x.rs", scoped, &config).len(), 0);
    }

    #[test]
    fn interrupt_poll_requires_a_flag_check() {
        let config = Config {
            interrupt_functions: vec!["Solver::propagate".to_string()],
            ..Config::default()
        };
        let bad = "impl Solver { fn propagate(&mut self) { while busy() { step(); } } }";
        let findings = check("crates/sat/src/x.rs", bad, &config);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "interrupt-poll");
        let good =
            "impl Solver { fn propagate(&mut self) { while busy() { if self.is_interrupted() \
             { return; } step(); } } }";
        assert_eq!(check("crates/sat/src/x.rs", good, &config).len(), 0);
    }

    #[test]
    fn manifest_entries_report_matches() {
        let config = Config {
            hot_functions: vec!["Tracker::push".to_string(), "ghost".to_string()],
            ..Config::default()
        };
        let src = "impl Tracker { fn push(&mut self) {} }";
        let tokens = lex(src);
        let scopes = scope(src, &tokens, false);
        let ctx = FileCtx {
            src,
            tokens: &tokens,
            scopes: &scopes,
            rel_path: "crates/automaton/src/x.rs",
            config: &config,
        };
        let mut matched = MatchedEntries::default();
        run_all(&ctx, &mut matched);
        assert!(matched.hot.contains("Tracker::push"));
        assert!(!matched.hot.contains("ghost"));
    }

    #[test]
    fn test_code_is_skipped_by_every_rule() {
        let config = Config {
            determinism_paths: vec!["crates/core/src".to_string()],
            panic_paths: vec!["crates/core/src".to_string()],
            ..Config::default()
        };
        let src = "#[cfg(test)] mod tests { fn f(m: &HashMap<u32, u32>) { \
                   for k in m.keys() { k.unwrap(); } } }";
        assert_eq!(check("crates/core/src/x.rs", src, &config).len(), 0);
    }
}
