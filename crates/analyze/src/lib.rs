//! `tracelint` — workspace-native static analysis for tracelearn.
//!
//! The workspace rests on invariants that generic tooling cannot check:
//! learned models must be byte-identical across thread counts, the solving
//! and monitoring hot paths must not allocate per event, and the serving
//! daemon must degrade per-stream instead of panicking a worker. This
//! crate encodes those invariants as lint rules over a hand-rolled token
//! stream (no dependencies) and ships a `tracelint` binary that CI runs as
//! a hard gate. See `docs/lints.md` for the rule reference and waiver
//! syntax, and `tracelint.conf` at the repo root for the committed
//! manifest of paths and hot functions each rule covers.

#![forbid(unsafe_code)]

pub mod config;
pub mod engine;
pub mod lexer;
pub mod rules;
pub mod scope;

pub use config::{Config, ConfigError};
pub use engine::{analyze_root, analyze_source, render_json, render_text, Analysis, Report};
pub use rules::{Finding, MatchedEntries, WAIVABLE_RULES};
