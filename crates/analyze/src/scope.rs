//! Function/impl scoping over the token stream.
//!
//! A single pass over the tokens assigns every token to an enclosing
//! function (qualified as `Type::method` inside `impl` blocks) and marks
//! test code: `#[cfg(test)]` modules, `#[test]` functions, and whole files
//! under a `tests/` directory. Every lint rule skips test code, so this
//! classification is the gate the rules trust.

use crate::lexer::{Token, TokenKind};

/// The resolved scope of every token in one file.
pub struct ScopeMap {
    /// For each token index: index into `functions`, or `NO_FN`.
    fn_of: Vec<u32>,
    /// For each token index: true when the token is in test-only code.
    test_of: Vec<bool>,
    /// Qualified function names plus their body token ranges.
    functions: Vec<FnSpan>,
}

/// One function body discovered in a file.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// `name` or `Type::name` when defined inside an `impl` block.
    pub qualified: String,
    /// Token index of the body's opening `{`.
    pub body_open: usize,
    /// Token index of the body's closing `}` (or last token if unterminated).
    pub body_close: usize,
    /// Depth of the body's opening brace (statements directly inside the
    /// body sit at `depth + 1`... measured as brace nesting before the `{`).
    pub depth: usize,
    /// True when the function is test-only code.
    pub is_test: bool,
    /// Line of the `fn` keyword.
    pub line: u32,
}

pub const NO_FN: u32 = u32::MAX;

impl ScopeMap {
    /// The qualified name of the function containing token `idx`, if any.
    pub fn function_at(&self, idx: usize) -> Option<&str> {
        match self.fn_of.get(idx).copied() {
            Some(f) if f != NO_FN => Some(&self.functions[f as usize].qualified),
            _ => None,
        }
    }

    /// True when token `idx` belongs to test-only code.
    pub fn is_test(&self, idx: usize) -> bool {
        self.test_of.get(idx).copied().unwrap_or(false)
    }

    /// All functions found in the file.
    pub fn functions(&self) -> &[FnSpan] {
        &self.functions
    }
}

/// What kind of item a `{` opens.
#[derive(Debug, Clone)]
enum FrameKind {
    Plain,
    Fn { index: u32 },
    Impl { type_name: String },
    TestMod,
}

struct Frame {
    kind: FrameKind,
    test: bool,
}

/// Builds the scope map for one file. `file_is_test` marks the whole file
/// as test code (integration-test files under `tests/`).
pub fn scope(src: &str, tokens: &[Token], file_is_test: bool) -> ScopeMap {
    // Pre-pass: decide what each opening brace introduces.
    let mut map = ScopeMap {
        fn_of: vec![NO_FN; tokens.len()],
        test_of: vec![file_is_test; tokens.len()],
        functions: Vec::new(),
    };
    let openers = find_item_braces(src, tokens, &mut map.functions);

    let mut stack: Vec<Frame> = Vec::new();
    let mut impl_type: Option<String> = None;
    let mut in_test_depth: Option<usize> = None;
    let mut current_fn: Vec<u32> = Vec::new();

    for (idx, tok) in tokens.iter().enumerate() {
        // Record context *including* the brace tokens themselves.
        let in_test = file_is_test || in_test_depth.is_some();
        map.test_of[idx] = in_test;
        if let Some(&f) = current_fn.last() {
            map.fn_of[idx] = f;
        }

        if tok.is_punct('{') {
            let kind = openers
                .iter()
                .find(|(open, _)| *open == idx)
                .map(|(_, k)| k.clone())
                .unwrap_or(FrameKind::Plain);
            let test_here = matches!(kind, FrameKind::TestMod)
                || matches!(
                    &kind,
                    FrameKind::Fn { index } if map.functions[*index as usize].is_test
                );
            if test_here && in_test_depth.is_none() {
                in_test_depth = Some(stack.len());
            }
            match &kind {
                FrameKind::Fn { index } => {
                    current_fn.push(*index);
                    // Qualify with the enclosing impl type, if any.
                    if let Some(ty) = &impl_type {
                        let f = &mut map.functions[*index as usize];
                        if !f.qualified.contains("::") {
                            f.qualified = format!("{ty}::{}", f.qualified);
                        }
                    }
                }
                FrameKind::Impl { type_name } if impl_type.is_none() => {
                    impl_type = Some(type_name.clone());
                }
                _ => {}
            }
            stack.push(Frame {
                kind,
                test: test_here,
            });
        } else if tok.is_punct('}') {
            if let Some(frame) = stack.pop() {
                match frame.kind {
                    FrameKind::Fn { index } => {
                        current_fn.pop();
                        map.functions[index as usize].body_close = idx;
                    }
                    // Only clear if no outer impl (nested impls are rare and
                    // outer-wins is good enough for lint scoping).
                    FrameKind::Impl { .. }
                        if !stack
                            .iter()
                            .any(|f| matches!(f.kind, FrameKind::Impl { .. })) =>
                    {
                        impl_type = None;
                    }
                    _ => {}
                }
                if let Some(depth) = in_test_depth {
                    if stack.len() < depth || (stack.len() == depth && frame.test) {
                        in_test_depth = None;
                    }
                }
            }
        }
    }
    map
}

/// Scans the token stream for `fn`, `impl`, and `mod` items, recording the
/// token index of each item's opening `{` and, for functions, an `FnSpan`.
fn find_item_braces(
    src: &str,
    tokens: &[Token],
    functions: &mut Vec<FnSpan>,
) -> Vec<(usize, FrameKind)> {
    let mut openers: Vec<(usize, FrameKind)> = Vec::new();
    let mut pending_test_attr = false;
    let mut brace_depth = 0usize;
    let mut i = 0usize;
    while i < tokens.len() {
        let tok = &tokens[i];
        match tok.kind {
            TokenKind::Punct('{') => brace_depth += 1,
            TokenKind::Punct('}') => brace_depth = brace_depth.saturating_sub(1),
            TokenKind::Punct('#') if next_is_punct(tokens, i + 1, '[') => {
                // Consume the attribute; remember `#[test]` / `#[cfg(test)]`.
                let (end, is_test) = scan_attribute(src, tokens, i + 1);
                pending_test_attr |= is_test;
                i = end;
                continue;
            }
            TokenKind::Ident => {
                let word = tok.text(src);
                match word {
                    "fn" => {
                        if let Some((open, span)) =
                            scan_fn(src, tokens, i, brace_depth, pending_test_attr)
                        {
                            let index = functions.len() as u32;
                            functions.push(span);
                            openers.push((open, FrameKind::Fn { index }));
                            pending_test_attr = false;
                            // Resume right after the header; the body braces
                            // are handled by the main walk.
                            i = open;
                            continue;
                        }
                        pending_test_attr = false;
                    }
                    "impl" => {
                        if let Some((open, type_name)) = scan_impl(src, tokens, i) {
                            openers.push((open, FrameKind::Impl { type_name }));
                            i = open;
                            pending_test_attr = false;
                            continue;
                        }
                        pending_test_attr = false;
                    }
                    "mod" => {
                        if let Some(open) = scan_mod(src, tokens, i, &mut pending_test_attr) {
                            if pending_test_attr {
                                openers.push((open, FrameKind::TestMod));
                            }
                            i = open;
                            pending_test_attr = false;
                            continue;
                        }
                        pending_test_attr = false;
                    }
                    // Visibility and qualifiers keep a pending attr alive:
                    // `#[test] pub async fn x`.
                    "pub" | "async" | "unsafe" | "const" | "extern" | "crate" | "in" | "super"
                    | "self" => {}
                    _ => pending_test_attr = false,
                }
            }
            TokenKind::Punct('(') | TokenKind::Punct(')') => {
                // pub(crate) — keep the attr pending.
            }
            TokenKind::Comment => {}
            _ => pending_test_attr = false,
        }
        i += 1;
    }
    openers.sort_by_key(|(open, _)| *open);
    openers
}

fn next_is_punct(tokens: &[Token], idx: usize, ch: char) -> bool {
    tokens.get(idx).is_some_and(|t| t.is_punct(ch))
}

/// From the `[` of an attribute, returns (index past the closing `]`,
/// whether the attribute marks test code).
fn scan_attribute(src: &str, tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut is_test = false;
    let mut saw_cfg = false;
    let mut saw_not = false;
    let mut i = open;
    while i < tokens.len() {
        let tok = &tokens[i];
        if tok.is_punct('[') {
            depth += 1;
        } else if tok.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return (i + 1, is_test);
            }
        } else if tok.kind == TokenKind::Ident {
            let word = tok.text(src);
            if word == "cfg" {
                saw_cfg = true;
            } else if word == "not" {
                // `#[cfg(not(test))]` is production code, not test code.
                saw_not = true;
            } else if word == "test" {
                // `#[test]` or `#[cfg(test)]` / `#[cfg(all(test, ...))]`.
                is_test = (saw_cfg && !saw_not) || i == open + 1;
            }
        }
        i += 1;
    }
    (tokens.len(), is_test)
}

/// From a `fn` keyword, finds the name and the body's opening `{`.
/// Returns None for `fn` in type position (`fn(A) -> B`) or bodyless
/// declarations (trait methods ending in `;`).
fn scan_fn(
    src: &str,
    tokens: &[Token],
    fn_idx: usize,
    depth: usize,
    is_test: bool,
) -> Option<(usize, FnSpan)> {
    let name_tok = tokens.get(fn_idx + 1)?;
    if name_tok.kind != TokenKind::Ident {
        return None;
    }
    let name = name_tok.text(src).to_string();
    // Find the first `{` outside parentheses: that's the body.
    let mut paren = 0usize;
    let mut i = fn_idx + 2;
    while i < tokens.len() {
        let tok = &tokens[i];
        match tok.kind {
            TokenKind::Punct('(') => paren += 1,
            TokenKind::Punct(')') => paren = paren.saturating_sub(1),
            TokenKind::Punct('{') if paren == 0 => {
                return Some((
                    i,
                    FnSpan {
                        qualified: name,
                        body_open: i,
                        body_close: tokens.len().saturating_sub(1),
                        depth,
                        is_test,
                        line: tokens[fn_idx].line,
                    },
                ));
            }
            TokenKind::Punct(';') if paren == 0 => return None,
            _ => {}
        }
        i += 1;
    }
    None
}

/// From an `impl` keyword, finds the implemented type's name and the token
/// index of the block's `{`. Handles `impl<T> Type<T>`, `impl Trait for
/// Type`, and `impl fmt::Display for Type`.
fn scan_impl(src: &str, tokens: &[Token], impl_idx: usize) -> Option<(usize, String)> {
    // Collect header tokens up to the opening `{`.
    let mut i = impl_idx + 1;
    let mut header: Vec<usize> = Vec::new();
    while i < tokens.len() {
        let tok = &tokens[i];
        if tok.is_punct('{') {
            break;
        }
        if tok.is_punct(';') {
            return None;
        }
        header.push(i);
        i += 1;
    }
    if i >= tokens.len() {
        return None;
    }
    let open = i;

    // If a top-level `for` appears, the type is what follows it; otherwise
    // it's the first path after any leading generic parameter list.
    let mut angle = 0i32;
    let mut for_pos: Option<usize> = None;
    for (pos, &ti) in header.iter().enumerate() {
        let tok = &tokens[ti];
        match tok.kind {
            TokenKind::Punct('<') => angle += 1,
            TokenKind::Punct('>') => {
                // Ignore the `>` of `->` in generic bounds like Fn() -> T.
                let arrow =
                    ti > 0 && tokens[ti - 1].is_punct('-') && tokens[ti - 1].end == tok.start;
                if !arrow {
                    angle -= 1;
                }
            }
            TokenKind::Ident if angle == 0 && tok.text(src) == "for" => {
                for_pos = Some(pos);
                break;
            }
            TokenKind::Ident if angle == 0 && tok.text(src) == "where" => break,
            _ => {}
        }
    }

    let tail: &[usize] = match for_pos {
        Some(pos) => &header[pos + 1..],
        None => &header,
    };
    // The type name: last ident of the leading path, stopping at `<`, `{`,
    // or `where`. Skips `&`, lifetimes, `mut`, and leading generics.
    let mut name: Option<String> = None;
    let mut angle = 0i32;
    for &ti in tail {
        let tok = &tokens[ti];
        match tok.kind {
            TokenKind::Punct('<') => angle += 1,
            TokenKind::Punct('>') => {
                let arrow =
                    ti > 0 && tokens[ti - 1].is_punct('-') && tokens[ti - 1].end == tok.start;
                if !arrow {
                    angle -= 1;
                }
            }
            TokenKind::Ident if angle == 0 => {
                let word = tok.text(src);
                if word == "where" || word == "for" {
                    break;
                }
                if !matches!(word, "mut" | "dyn" | "const") {
                    name = Some(word.to_string());
                    // Keep going: `fmt::Display` should yield `Display`,
                    // via the `::` continuation below.
                    if !next_is_punct(tokens, ti + 1, ':') {
                        break;
                    }
                }
            }
            TokenKind::Lifetime => {}
            TokenKind::Punct('&') | TokenKind::Punct(':') => {}
            _ if angle > 0 => {}
            _ => break,
        }
    }
    Some((open, name.unwrap_or_else(|| "?".to_string())))
}

/// From a `mod` keyword, finds the block's `{` (None for `mod name;`).
/// Also treats `mod tests` / `mod test` as test modules by convention.
fn scan_mod(
    src: &str,
    tokens: &[Token],
    mod_idx: usize,
    pending_test_attr: &mut bool,
) -> Option<usize> {
    let name_tok = tokens.get(mod_idx + 1)?;
    if name_tok.kind != TokenKind::Ident {
        return None;
    }
    if matches!(name_tok.text(src), "tests" | "test") {
        *pending_test_attr = true;
    }
    let next = tokens.get(mod_idx + 2)?;
    if next.is_punct('{') {
        Some(mod_idx + 2)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scoped(src: &str) -> (Vec<Token>, ScopeMap) {
        let tokens = lex(src);
        let map = scope(src, &tokens, false);
        (tokens, map)
    }

    #[test]
    fn free_function_names() {
        let src = "fn alpha() { beta(); } fn gamma() {}";
        let (tokens, map) = scoped(src);
        let beta = tokens.iter().position(|t| t.is_ident(src, "beta")).unwrap();
        assert_eq!(map.function_at(beta), Some("alpha"));
        assert_eq!(map.functions().len(), 2);
    }

    #[test]
    fn impl_methods_are_qualified() {
        let src = "impl<T: Clone> Tracker<T> { fn push(&mut self) { work(); } }";
        let (tokens, map) = scoped(src);
        let work = tokens.iter().position(|t| t.is_ident(src, "work")).unwrap();
        assert_eq!(map.function_at(work), Some("Tracker::push"));
    }

    #[test]
    fn trait_impl_uses_the_type_after_for() {
        let src = "impl fmt::Display for Valuation { fn fmt(&self) { x(); } }";
        let (tokens, map) = scoped(src);
        let x = tokens.iter().position(|t| t.is_ident(src, "x")).unwrap();
        assert_eq!(map.function_at(x), Some("Valuation::fmt"));
    }

    #[test]
    fn cfg_test_mod_marks_tests() {
        let src = "fn real() { a(); }\n#[cfg(test)]\nmod tests { fn helper() { b(); } }";
        let (tokens, map) = scoped(src);
        let a = tokens.iter().position(|t| t.is_ident(src, "a")).unwrap();
        let b = tokens.iter().position(|t| t.is_ident(src, "b")).unwrap();
        assert!(!map.is_test(a));
        assert!(map.is_test(b));
    }

    #[test]
    fn test_attribute_marks_one_function() {
        let src = "#[test]\nfn check() { x(); }\nfn real() { y(); }";
        let (tokens, map) = scoped(src);
        let x = tokens.iter().position(|t| t.is_ident(src, "x")).unwrap();
        let y = tokens.iter().position(|t| t.is_ident(src, "y")).unwrap();
        assert!(map.is_test(x));
        assert!(!map.is_test(y));
    }

    #[test]
    fn fn_in_type_position_is_not_a_function() {
        let src = "fn takes(f: fn(u32) -> u32) { f(1); }";
        let (_, map) = scoped(src);
        assert_eq!(map.functions().len(), 1);
        assert_eq!(map.functions()[0].qualified, "takes");
    }

    #[test]
    fn trait_method_declarations_have_no_body() {
        let src = "trait T { fn sig(&self); fn with_default(&self) { d(); } }";
        let (tokens, map) = scoped(src);
        assert_eq!(map.functions().len(), 1);
        let d = tokens.iter().position(|t| t.is_ident(src, "d")).unwrap();
        assert_eq!(map.function_at(d), Some("with_default"));
    }

    #[test]
    fn nested_functions_resolve_to_the_inner_fn() {
        let src = "fn outer() { fn inner() { deep(); } shallow(); }";
        let (tokens, map) = scoped(src);
        let deep = tokens.iter().position(|t| t.is_ident(src, "deep")).unwrap();
        let shallow = tokens
            .iter()
            .position(|t| t.is_ident(src, "shallow"))
            .unwrap();
        assert_eq!(map.function_at(deep), Some("inner"));
        assert_eq!(map.function_at(shallow), Some("outer"));
    }
}
