//! The committed lint manifest, `tracelint.conf`.
//!
//! A deliberately plain line format (it is not TOML, hence the `.conf`
//! extension): `[section]` headers, one entry per line, `#` comments.
//! Sections name the rules they parameterise:
//!
//! ```text
//! [nondet-iter]     # path prefixes where hash iteration is denied
//! crates/core/src
//!
//! [hot-path-alloc]  # qualified function names denied heap allocation
//! Solver::propagate
//!
//! [serve-panic]     # path prefixes where panicking constructs are denied
//! crates/serve/src
//!
//! [interrupt-poll]  # functions whose top-level loops must poll interrupts
//! Solver::propagate
//! ```

use std::fmt;

/// Parsed manifest: which paths and functions each rule applies to.
#[derive(Debug, Default, Clone)]
pub struct Config {
    /// Path prefixes (repo-relative, `/` separated) under the determinism
    /// rule.
    pub determinism_paths: Vec<String>,
    /// Qualified function names (`Type::method` or `function`) in which
    /// allocation is denied.
    pub hot_functions: Vec<String>,
    /// Path prefixes under the panic-safety rule.
    pub panic_paths: Vec<String>,
    /// Qualified function names whose top-level loops must poll an
    /// interrupt flag.
    pub interrupt_functions: Vec<String>,
}

/// A manifest parse failure: the offending line and what was wrong.
#[derive(Debug)]
pub struct ConfigError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tracelint.conf:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// Parses the manifest text. Unknown sections are errors so a typo'd
    /// header cannot silently disable a rule.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut config = Config::default();
        let mut section: Option<&str> = None;
        for (number, raw) in text.lines().enumerate() {
            let line = match raw.split_once('#') {
                Some((before, _)) => before.trim(),
                None => raw.trim(),
            };
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[') {
                let Some(name) = name.strip_suffix(']') else {
                    return Err(ConfigError {
                        line: number + 1,
                        message: format!("unterminated section header {line:?}"),
                    });
                };
                section = match name {
                    "nondet-iter" => Some("nondet-iter"),
                    "hot-path-alloc" => Some("hot-path-alloc"),
                    "serve-panic" => Some("serve-panic"),
                    "interrupt-poll" => Some("interrupt-poll"),
                    other => {
                        return Err(ConfigError {
                            line: number + 1,
                            message: format!("unknown section {other:?}"),
                        })
                    }
                };
                continue;
            }
            let entry = line.to_string();
            match section {
                Some("nondet-iter") => config.determinism_paths.push(entry),
                Some("hot-path-alloc") => config.hot_functions.push(entry),
                Some("serve-panic") => config.panic_paths.push(entry),
                Some("interrupt-poll") => config.interrupt_functions.push(entry),
                _ => {
                    return Err(ConfigError {
                        line: number + 1,
                        message: format!("entry {entry:?} before any [section] header"),
                    })
                }
            }
        }
        Ok(config)
    }

    /// True when `rel_path` (repo-relative, `/` separated) is under any of
    /// the given prefixes.
    pub fn path_matches(rel_path: &str, prefixes: &[String]) -> bool {
        prefixes.iter().any(|p| {
            rel_path == p
                || rel_path
                    .strip_prefix(p.as_str())
                    .is_some_and(|rest| rest.starts_with('/'))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_sections_with_comments() {
        let text = "\
# manifest\n\
[nondet-iter]\n\
crates/core/src  # model producer\n\
[hot-path-alloc]\n\
Solver::propagate\n\
[serve-panic]\n\
crates/serve/src\n\
[interrupt-poll]\n\
Learner::refine_at_count\n";
        let config = Config::parse(text).unwrap();
        assert_eq!(config.determinism_paths, ["crates/core/src"]);
        assert_eq!(config.hot_functions, ["Solver::propagate"]);
        assert_eq!(config.panic_paths, ["crates/serve/src"]);
        assert_eq!(config.interrupt_functions, ["Learner::refine_at_count"]);
    }

    #[test]
    fn unknown_section_is_an_error() {
        let err = Config::parse("[hot-path-aloc]\n").unwrap_err();
        assert!(err.message.contains("unknown section"));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn entry_outside_a_section_is_an_error() {
        let err = Config::parse("crates/core/src\n").unwrap_err();
        assert!(err.message.contains("before any"));
    }

    #[test]
    fn path_prefix_matching_respects_components() {
        let prefixes = vec!["crates/core/src".to_string()];
        assert!(Config::path_matches(
            "crates/core/src/learner.rs",
            &prefixes
        ));
        assert!(!Config::path_matches(
            "crates/core/src2/learner.rs",
            &prefixes
        ));
        assert!(!Config::path_matches("crates/serve/src/lib.rs", &prefixes));
    }
}
