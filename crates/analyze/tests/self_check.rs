//! The workspace must be lint-clean: this test runs the full tracelint
//! scan with the committed manifest, exactly as CI does, so `cargo test`
//! is itself a hard gate on the repo's determinism / hot-path /
//! panic-safety invariants.

use std::fs;
use std::path::Path;

use tracelearn_analyze::{analyze_root, render_text, Config};

#[test]
fn workspace_is_lint_clean_within_the_waiver_budget() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let manifest = fs::read_to_string(root.join("tracelint.conf"))
        .expect("tracelint.conf exists at the repo root");
    let config = Config::parse(&manifest).expect("manifest parses");

    let analysis = analyze_root(&root, &config).expect("workspace scan succeeds");
    assert!(
        analysis.findings.is_empty(),
        "tracelint found problems:\n{}",
        render_text(&analysis)
    );
    // The tree is realistically sized and waivers stay within the budget
    // the rules were reviewed against.
    assert!(
        analysis.files_scanned >= 50,
        "scan looks truncated: only {} files",
        analysis.files_scanned
    );
    assert!(
        analysis.waivers_used <= 10,
        "waiver budget exceeded: {} in use",
        analysis.waivers_used
    );
}
