//! Fixture corpus: every rule has a firing and a non-firing fixture, and
//! the waiver machinery has honored / stale / malformed cases. Fixtures
//! live under `crates/analyze/fixtures/` (excluded from the workspace
//! scan) and are driven through `analyze_source` with a config that points
//! each rule at the fixture tree.

use std::fs;
use std::path::Path;

use tracelearn_analyze::{analyze_source, Config, MatchedEntries, Report};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Runs one fixture under the given config; returns surviving findings and
/// the number of waivers used.
fn run(name: &str, config: &Config) -> (Vec<Report>, usize) {
    let source = fixture(name);
    let rel = format!("fixtures/{name}");
    let mut matched = MatchedEntries::default();
    analyze_source(&rel, &source, config, &mut matched)
}

fn rules(findings: &[Report]) -> Vec<&str> {
    findings.iter().map(|f| f.rule.as_str()).collect()
}

fn nondet_config() -> Config {
    Config {
        determinism_paths: vec!["fixtures".to_string()],
        ..Config::default()
    }
}

#[test]
fn nondet_iter_fires_on_hash_iteration() {
    let (findings, _) = run("nondet_iter_pos.rs", &nondet_config());
    assert_eq!(rules(&findings), ["nondet-iter"], "{findings:?}");
}

#[test]
fn nondet_iter_stays_quiet_on_ordered_access() {
    let (findings, _) = run("nondet_iter_neg.rs", &nondet_config());
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn hot_path_alloc_fires_only_in_manifest_functions() {
    let config = Config {
        hot_functions: vec!["Hot::step".to_string()],
        ..Config::default()
    };
    let (findings, _) = run("hot_alloc_pos.rs", &config);
    assert_eq!(
        rules(&findings),
        ["hot-path-alloc", "hot-path-alloc"],
        "{findings:?}"
    );
    assert!(findings
        .iter()
        .all(|f| f.function.as_deref() == Some("Hot::step")));

    let (findings, _) = run("hot_alloc_neg.rs", &config);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn serve_panic_fires_on_panicking_constructs() {
    let config = Config {
        panic_paths: vec!["fixtures".to_string()],
        ..Config::default()
    };
    let (findings, _) = run("serve_panic_pos.rs", &config);
    // unwrap, expect, panic!, and the slice index.
    assert_eq!(findings.len(), 4, "{findings:?}");
    assert!(findings.iter().all(|f| f.rule == "serve-panic"));

    let (findings, _) = run("serve_panic_neg.rs", &config);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn guard_across_call_fires_on_live_guards_only() {
    let config = Config::default();
    let (findings, _) = run("guard_pos.rs", &config);
    assert_eq!(rules(&findings), ["guard-across-call"], "{findings:?}");

    let (findings, _) = run("guard_neg.rs", &config);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn interrupt_poll_requires_flag_checks() {
    let config = Config {
        interrupt_functions: vec!["Worker::run".to_string()],
        ..Config::default()
    };
    let (findings, _) = run("interrupt_pos.rs", &config);
    assert_eq!(rules(&findings), ["interrupt-poll"], "{findings:?}");

    let (findings, _) = run("interrupt_neg.rs", &config);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn justified_waiver_is_honored_and_counted() {
    let (findings, used) = run("waiver_ok.rs", &nondet_config());
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(used, 1);
}

#[test]
fn stale_waiver_is_rejected() {
    let (findings, used) = run("waiver_stale.rs", &nondet_config());
    assert_eq!(rules(&findings), ["stale-waiver"], "{findings:?}");
    assert_eq!(used, 0);
}

#[test]
fn waiver_without_reason_is_rejected_and_does_not_suppress() {
    let (findings, used) = run("waiver_bad.rs", &nondet_config());
    let mut seen = rules(&findings);
    seen.sort_unstable();
    assert_eq!(seen, ["nondet-iter", "waiver-syntax"], "{findings:?}");
    assert_eq!(used, 0);
}
