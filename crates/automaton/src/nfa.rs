//! The core NFA container.

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::hash::Hash;

use crate::subset::SubsetTracker;

/// Identifier of an automaton state (zero-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(u32);

impl StateId {
    /// Creates a state id from a zero-based index.
    pub fn new(index: u32) -> Self {
        StateId(index)
    }

    /// The zero-based index of the state.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // States are displayed 1-based, matching the paper's figures (q1, q2, …).
        write!(f, "q{}", self.0 + 1)
    }
}

/// Identifier of an interned transition label (zero-based, first-use order).
///
/// Monitoring hot paths resolve a label once with [`Nfa::label_id`] and then
/// use [`Nfa::successors_by_id`] / [`SubsetTracker::push_id`], skipping the
/// hash lookup per step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LabelId(u32);

impl LabelId {
    /// Creates a label id from a zero-based index.
    pub fn new(index: u32) -> Self {
        LabelId(index)
    }

    /// The zero-based index of the label.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A single labelled transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Transition<L> {
    /// Source state.
    pub from: StateId,
    /// Transition label.
    pub label: L,
    /// Target state.
    pub to: StateId,
}

/// A non-deterministic finite automaton with labels of type `L` in which all
/// states are accepting (rejection = running into a dead end).
///
/// Labels are generic: the learner instantiates `L` with predicate ids, the
/// state-merge baseline with event strings and tests with `&str` literals.
///
/// Besides the flat transition list the automaton maintains a label-indexed
/// adjacency: labels are interned to dense [`LabelId`]s on insertion and each
/// `(state, label)` pair keeps its successor list, so
/// [`successors`](Nfa::successors) is an indexed slice lookup instead of an
/// O(transitions) scan. This is what makes per-event monitoring cheap — see
/// [`SubsetTracker`].
#[derive(Debug, Clone)]
pub struct Nfa<L> {
    num_states: usize,
    initial: StateId,
    transitions: Vec<Transition<L>>,
    /// Interned labels in first-use order; index = `LabelId`.
    labels: Vec<L>,
    label_ids: HashMap<L, LabelId>,
    /// Successor states per `(state, label)`, insertion order, no duplicates.
    successor_lists: HashMap<(StateId, LabelId), Vec<StateId>>,
    /// Indices into `transitions` of each state's outgoing transitions.
    outgoing_lists: Vec<Vec<u32>>,
}

/// Automaton equality is semantic: same states, same initial state, same
/// transitions in the same insertion order. The derived adjacency indexes are
/// a function of those fields and deliberately excluded.
impl<L: PartialEq> PartialEq for Nfa<L> {
    fn eq(&self, other: &Self) -> bool {
        self.num_states == other.num_states
            && self.initial == other.initial
            && self.transitions == other.transitions
    }
}

impl<L: Eq> Eq for Nfa<L> {}

impl<L> Nfa<L>
where
    L: Clone + Eq + Hash,
{
    /// Creates an automaton with `num_states` states and the given initial
    /// state, and no transitions.
    ///
    /// # Panics
    ///
    /// Panics if `num_states` is zero or the initial state is out of range.
    pub fn new(num_states: usize, initial: StateId) -> Self {
        assert!(num_states > 0, "an automaton needs at least one state");
        assert!(initial.index() < num_states, "initial state out of range");
        Nfa {
            num_states,
            initial,
            transitions: Vec::new(),
            labels: Vec::new(),
            label_ids: HashMap::new(),
            successor_lists: HashMap::new(),
            outgoing_lists: vec![Vec::new(); num_states],
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// The initial state.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// All states, in index order.
    pub fn states(&self) -> impl Iterator<Item = StateId> {
        (0..self.num_states as u32).map(StateId::new)
    }

    /// All transitions, in insertion order.
    pub fn transitions(&self) -> &[Transition<L>] {
        &self.transitions
    }

    /// Number of transitions.
    pub fn num_transitions(&self) -> usize {
        self.transitions.len()
    }

    /// Adds a transition. Duplicate transitions are ignored.
    ///
    /// # Panics
    ///
    /// Panics if either state is out of range.
    pub fn add_transition(&mut self, from: StateId, label: L, to: StateId) {
        assert!(from.index() < self.num_states, "source state out of range");
        assert!(to.index() < self.num_states, "target state out of range");
        let label_id = match self.label_ids.get(&label) {
            Some(&id) => id,
            None => {
                let id = LabelId::new(self.labels.len() as u32);
                self.labels.push(label.clone());
                self.label_ids.insert(label.clone(), id);
                id
            }
        };
        let successors = self.successor_lists.entry((from, label_id)).or_default();
        if successors.contains(&to) {
            return;
        }
        successors.push(to);
        self.outgoing_lists[from.index()].push(self.transitions.len() as u32);
        self.transitions.push(Transition { from, label, to });
    }

    /// The successor states of `state` under `label`, as an indexed slice
    /// (empty when the pair has no transition or the label is unknown).
    pub fn successors(&self, state: StateId, label: &L) -> &[StateId] {
        match self.label_ids.get(label) {
            Some(&id) => self.successors_by_id(state, id),
            None => &[],
        }
    }

    /// The successor states of `state` under an interned label id.
    pub fn successors_by_id(&self, state: StateId, label_id: LabelId) -> &[StateId] {
        self.successor_lists
            .get(&(state, label_id))
            .map_or(&[], Vec::as_slice)
    }

    /// The interned id of `label`, or `None` if no transition uses it.
    pub fn label_id(&self, label: &L) -> Option<LabelId> {
        self.label_ids.get(label).copied()
    }

    /// The label interned under `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn label(&self, id: LabelId) -> &L {
        &self.labels[id.index()]
    }

    /// Number of distinct labels used on transitions.
    pub fn num_labels(&self) -> usize {
        self.labels.len()
    }

    /// All transitions leaving `state`, in insertion order.
    pub fn outgoing(&self, state: StateId) -> Vec<&Transition<L>> {
        self.outgoing_lists[state.index()]
            .iter()
            .map(|&i| &self.transitions[i as usize])
            .collect()
    }

    /// The set of distinct labels used on transitions, in first-use order.
    pub fn labels(&self) -> Vec<L> {
        self.labels.clone()
    }

    /// Runs the automaton on `word` from the initial state and returns the
    /// set of states reachable after consuming the whole word, or an empty
    /// set if the automaton gets stuck.
    pub fn run(&self, word: &[L]) -> BTreeSet<StateId> {
        let mut tracker = SubsetTracker::from_initial(self);
        for label in word {
            if !tracker.push(label) {
                break;
            }
        }
        tracker.states().collect()
    }

    /// Whether the automaton accepts `word` (all states are accepting, so
    /// acceptance means the word can be consumed without getting stuck).
    pub fn accepts(&self, word: &[L]) -> bool {
        !self.run(word).is_empty()
    }

    /// Runs the automaton on `word` starting from an arbitrary state, the
    /// acceptance notion used when checking trace segments that start in the
    /// middle of an execution.
    pub fn accepts_from_any_state(&self, word: &[L]) -> bool {
        let mut tracker = SubsetTracker::from_all_states(self);
        word.iter().all(|label| tracker.push(label))
    }

    /// States reachable from the initial state through any transitions.
    pub fn reachable_states(&self) -> BTreeSet<StateId> {
        let mut reached = BTreeSet::new();
        let mut stack = vec![self.initial];
        while let Some(state) = stack.pop() {
            if reached.insert(state) {
                for t in self.outgoing(state) {
                    stack.push(t.to);
                }
            }
        }
        reached
    }

    /// Whether every (state, label) pair has at most one successor, the
    /// structural constraint the learner imposes on candidate models.
    pub fn is_deterministic(&self) -> bool {
        self.successor_lists.values().all(|succ| succ.len() <= 1)
    }

    /// Applies a function to every label, producing a new automaton with the
    /// same shape. Used to render predicate-id automata with human-readable
    /// predicate strings.
    pub fn map_labels<M, F>(&self, mut f: F) -> Nfa<M>
    where
        M: Clone + Eq + Hash,
        F: FnMut(&L) -> M,
    {
        let mut mapped = Nfa::new(self.num_states, self.initial);
        for t in &self.transitions {
            mapped.add_transition(t.from, f(&t.label), t.to);
        }
        mapped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> StateId {
        StateId::new(i)
    }

    /// The counter automaton of Fig. 5: up, threshold, down, floor.
    fn counter_nfa() -> Nfa<&'static str> {
        let mut nfa = Nfa::new(4, s(0));
        nfa.add_transition(s(0), "inc", s(0));
        nfa.add_transition(s(0), "at_max", s(1));
        nfa.add_transition(s(1), "dec", s(2));
        nfa.add_transition(s(2), "dec", s(2));
        nfa.add_transition(s(2), "at_min", s(3));
        nfa.add_transition(s(3), "inc", s(0));
        nfa
    }

    #[test]
    fn construction_and_counts() {
        let nfa = counter_nfa();
        assert_eq!(nfa.num_states(), 4);
        assert_eq!(nfa.num_transitions(), 6);
        assert_eq!(nfa.initial(), s(0));
        assert_eq!(nfa.states().count(), 4);
        assert_eq!(nfa.labels().len(), 4);
        assert_eq!(nfa.num_labels(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn transition_to_unknown_state_panics() {
        let mut nfa = Nfa::new(2, s(0));
        nfa.add_transition(s(0), "a", s(5));
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn zero_state_automaton_panics() {
        let _: Nfa<&str> = Nfa::new(0, s(0));
    }

    #[test]
    fn duplicate_transitions_are_ignored() {
        let mut nfa = Nfa::new(2, s(0));
        nfa.add_transition(s(0), "a", s(1));
        nfa.add_transition(s(0), "a", s(1));
        assert_eq!(nfa.num_transitions(), 1);
    }

    #[test]
    fn successors_and_outgoing() {
        let nfa = counter_nfa();
        assert_eq!(nfa.successors(s(0), &"inc"), vec![s(0)]);
        assert_eq!(nfa.successors(s(0), &"dec"), vec![]);
        assert_eq!(nfa.successors(s(0), &"unknown-label"), vec![]);
        assert_eq!(nfa.outgoing(s(0)).len(), 2);
        assert_eq!(nfa.outgoing(s(3)).len(), 1);
    }

    #[test]
    fn label_interning_is_first_use_order() {
        let nfa = counter_nfa();
        assert_eq!(nfa.labels(), vec!["inc", "at_max", "dec", "at_min"]);
        let inc = nfa.label_id(&"inc").unwrap();
        assert_eq!(inc.index(), 0);
        assert_eq!(*nfa.label(inc), "inc");
        assert_eq!(nfa.label_id(&"missing"), None);
        // Indexed lookup agrees with the by-value lookup.
        assert_eq!(
            nfa.successors_by_id(s(0), inc),
            nfa.successors(s(0), &"inc")
        );
    }

    #[test]
    fn equality_ignores_derived_indexes() {
        // Two automata with identical transition histories are equal even
        // though their interning tables were built separately.
        let a = counter_nfa();
        let b = counter_nfa();
        assert_eq!(a, b);
        let mut c = counter_nfa();
        c.add_transition(s(3), "dec", s(2));
        assert_ne!(a, c);
    }

    #[test]
    fn acceptance() {
        let nfa = counter_nfa();
        assert!(nfa.accepts(&[]));
        assert!(nfa.accepts(&["inc", "inc", "at_max", "dec", "dec", "at_min", "inc"]));
        assert!(!nfa.accepts(&["dec"]));
        assert!(!nfa.accepts(&["inc", "at_max", "inc"]));
    }

    #[test]
    fn acceptance_from_any_state() {
        let nfa = counter_nfa();
        // "dec" is not possible from the initial state, but is from q2/q3.
        assert!(!nfa.accepts(&["dec"]));
        assert!(nfa.accepts_from_any_state(&["dec", "at_min", "inc"]));
        assert!(!nfa.accepts_from_any_state(&["at_max", "at_max"]));
    }

    #[test]
    fn run_returns_reached_states() {
        let mut nfa = Nfa::new(3, s(0));
        nfa.add_transition(s(0), "a", s(1));
        nfa.add_transition(s(0), "a", s(2));
        let reached = nfa.run(&["a"]);
        assert_eq!(reached.len(), 2);
        assert!(reached.contains(&s(1)) && reached.contains(&s(2)));
    }

    #[test]
    fn reachability() {
        let mut nfa = Nfa::new(4, s(0));
        nfa.add_transition(s(0), "a", s(1));
        nfa.add_transition(s(1), "b", s(0));
        nfa.add_transition(s(2), "c", s(3));
        let reached = nfa.reachable_states();
        assert_eq!(reached.len(), 2);
        assert!(!reached.contains(&s(3)));
    }

    #[test]
    fn determinism_check() {
        let mut nfa = Nfa::new(3, s(0));
        nfa.add_transition(s(0), "a", s(1));
        nfa.add_transition(s(1), "a", s(2));
        assert!(nfa.is_deterministic());
        nfa.add_transition(s(0), "a", s(2));
        assert!(!nfa.is_deterministic());
    }

    #[test]
    fn map_labels_preserves_shape() {
        let nfa = counter_nfa();
        let mapped = nfa.map_labels(|l| l.len());
        assert_eq!(mapped.num_states(), nfa.num_states());
        assert_eq!(mapped.num_transitions(), nfa.num_transitions());
        assert!(mapped.accepts(&[3, 6, 3])); // inc, at_max, dec
    }

    #[test]
    fn display_of_states_is_one_based() {
        assert_eq!(s(0).to_string(), "q1");
        assert_eq!(s(6).to_string(), "q7");
        assert_eq!(s(2).index(), 2);
    }
}
