//! The core NFA container.

use std::collections::BTreeSet;
use std::fmt;
use std::hash::Hash;

/// Identifier of an automaton state (zero-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(u32);

impl StateId {
    /// Creates a state id from a zero-based index.
    pub fn new(index: u32) -> Self {
        StateId(index)
    }

    /// The zero-based index of the state.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // States are displayed 1-based, matching the paper's figures (q1, q2, …).
        write!(f, "q{}", self.0 + 1)
    }
}

/// A single labelled transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Transition<L> {
    /// Source state.
    pub from: StateId,
    /// Transition label.
    pub label: L,
    /// Target state.
    pub to: StateId,
}

/// A non-deterministic finite automaton with labels of type `L` in which all
/// states are accepting (rejection = running into a dead end).
///
/// Labels are generic: the learner instantiates `L` with predicate ids, the
/// state-merge baseline with event strings and tests with `&str` literals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Nfa<L> {
    num_states: usize,
    initial: StateId,
    transitions: Vec<Transition<L>>,
}

impl<L> Nfa<L>
where
    L: Clone + Eq + Hash,
{
    /// Creates an automaton with `num_states` states and the given initial
    /// state, and no transitions.
    ///
    /// # Panics
    ///
    /// Panics if `num_states` is zero or the initial state is out of range.
    pub fn new(num_states: usize, initial: StateId) -> Self {
        assert!(num_states > 0, "an automaton needs at least one state");
        assert!(initial.index() < num_states, "initial state out of range");
        Nfa {
            num_states,
            initial,
            transitions: Vec::new(),
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// The initial state.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// All states, in index order.
    pub fn states(&self) -> impl Iterator<Item = StateId> {
        (0..self.num_states as u32).map(StateId::new)
    }

    /// All transitions, in insertion order.
    pub fn transitions(&self) -> &[Transition<L>] {
        &self.transitions
    }

    /// Number of transitions.
    pub fn num_transitions(&self) -> usize {
        self.transitions.len()
    }

    /// Adds a transition. Duplicate transitions are ignored.
    ///
    /// # Panics
    ///
    /// Panics if either state is out of range.
    pub fn add_transition(&mut self, from: StateId, label: L, to: StateId) {
        assert!(from.index() < self.num_states, "source state out of range");
        assert!(to.index() < self.num_states, "target state out of range");
        let transition = Transition { from, label, to };
        if !self.transitions.contains(&transition) {
            self.transitions.push(transition);
        }
    }

    /// The successor states of `state` under `label`.
    pub fn successors(&self, state: StateId, label: &L) -> Vec<StateId> {
        self.transitions
            .iter()
            .filter(|t| t.from == state && &t.label == label)
            .map(|t| t.to)
            .collect()
    }

    /// All transitions leaving `state`.
    pub fn outgoing(&self, state: StateId) -> Vec<&Transition<L>> {
        self.transitions
            .iter()
            .filter(|t| t.from == state)
            .collect()
    }

    /// The set of distinct labels used on transitions.
    pub fn labels(&self) -> Vec<L> {
        let mut seen = Vec::new();
        for t in &self.transitions {
            if !seen.contains(&t.label) {
                seen.push(t.label.clone());
            }
        }
        seen
    }

    /// Runs the automaton on `word` from the initial state and returns the
    /// set of states reachable after consuming the whole word, or an empty
    /// set if the automaton gets stuck.
    pub fn run(&self, word: &[L]) -> BTreeSet<StateId> {
        let mut current: BTreeSet<StateId> = BTreeSet::new();
        current.insert(self.initial);
        for label in word {
            let mut next = BTreeSet::new();
            for &state in &current {
                for succ in self.successors(state, label) {
                    next.insert(succ);
                }
            }
            current = next;
            if current.is_empty() {
                break;
            }
        }
        current
    }

    /// Whether the automaton accepts `word` (all states are accepting, so
    /// acceptance means the word can be consumed without getting stuck).
    pub fn accepts(&self, word: &[L]) -> bool {
        !self.run(word).is_empty()
    }

    /// Runs the automaton on `word` starting from an arbitrary state, the
    /// acceptance notion used when checking trace segments that start in the
    /// middle of an execution.
    pub fn accepts_from_any_state(&self, word: &[L]) -> bool {
        let mut current: BTreeSet<StateId> = self.states().collect();
        for label in word {
            let mut next = BTreeSet::new();
            for &state in &current {
                for succ in self.successors(state, label) {
                    next.insert(succ);
                }
            }
            current = next;
            if current.is_empty() {
                return false;
            }
        }
        true
    }

    /// States reachable from the initial state through any transitions.
    pub fn reachable_states(&self) -> BTreeSet<StateId> {
        let mut reached = BTreeSet::new();
        let mut stack = vec![self.initial];
        while let Some(state) = stack.pop() {
            if reached.insert(state) {
                for t in self.outgoing(state) {
                    stack.push(t.to);
                }
            }
        }
        reached
    }

    /// Whether every (state, label) pair has at most one successor, the
    /// structural constraint the learner imposes on candidate models.
    pub fn is_deterministic(&self) -> bool {
        for (i, a) in self.transitions.iter().enumerate() {
            for b in &self.transitions[i + 1..] {
                if a.from == b.from && a.label == b.label && a.to != b.to {
                    return false;
                }
            }
        }
        true
    }

    /// Applies a function to every label, producing a new automaton with the
    /// same shape. Used to render predicate-id automata with human-readable
    /// predicate strings.
    pub fn map_labels<M, F>(&self, mut f: F) -> Nfa<M>
    where
        M: Clone + Eq + Hash,
        F: FnMut(&L) -> M,
    {
        let mut mapped = Nfa::new(self.num_states, self.initial);
        for t in &self.transitions {
            mapped.add_transition(t.from, f(&t.label), t.to);
        }
        mapped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> StateId {
        StateId::new(i)
    }

    /// The counter automaton of Fig. 5: up, threshold, down, floor.
    fn counter_nfa() -> Nfa<&'static str> {
        let mut nfa = Nfa::new(4, s(0));
        nfa.add_transition(s(0), "inc", s(0));
        nfa.add_transition(s(0), "at_max", s(1));
        nfa.add_transition(s(1), "dec", s(2));
        nfa.add_transition(s(2), "dec", s(2));
        nfa.add_transition(s(2), "at_min", s(3));
        nfa.add_transition(s(3), "inc", s(0));
        nfa
    }

    #[test]
    fn construction_and_counts() {
        let nfa = counter_nfa();
        assert_eq!(nfa.num_states(), 4);
        assert_eq!(nfa.num_transitions(), 6);
        assert_eq!(nfa.initial(), s(0));
        assert_eq!(nfa.states().count(), 4);
        assert_eq!(nfa.labels().len(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn transition_to_unknown_state_panics() {
        let mut nfa = Nfa::new(2, s(0));
        nfa.add_transition(s(0), "a", s(5));
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn zero_state_automaton_panics() {
        let _: Nfa<&str> = Nfa::new(0, s(0));
    }

    #[test]
    fn duplicate_transitions_are_ignored() {
        let mut nfa = Nfa::new(2, s(0));
        nfa.add_transition(s(0), "a", s(1));
        nfa.add_transition(s(0), "a", s(1));
        assert_eq!(nfa.num_transitions(), 1);
    }

    #[test]
    fn successors_and_outgoing() {
        let nfa = counter_nfa();
        assert_eq!(nfa.successors(s(0), &"inc"), vec![s(0)]);
        assert_eq!(nfa.successors(s(0), &"dec"), vec![]);
        assert_eq!(nfa.outgoing(s(0)).len(), 2);
        assert_eq!(nfa.outgoing(s(3)).len(), 1);
    }

    #[test]
    fn acceptance() {
        let nfa = counter_nfa();
        assert!(nfa.accepts(&[]));
        assert!(nfa.accepts(&["inc", "inc", "at_max", "dec", "dec", "at_min", "inc"]));
        assert!(!nfa.accepts(&["dec"]));
        assert!(!nfa.accepts(&["inc", "at_max", "inc"]));
    }

    #[test]
    fn acceptance_from_any_state() {
        let nfa = counter_nfa();
        // "dec" is not possible from the initial state, but is from q2/q3.
        assert!(!nfa.accepts(&["dec"]));
        assert!(nfa.accepts_from_any_state(&["dec", "at_min", "inc"]));
        assert!(!nfa.accepts_from_any_state(&["at_max", "at_max"]));
    }

    #[test]
    fn run_returns_reached_states() {
        let mut nfa = Nfa::new(3, s(0));
        nfa.add_transition(s(0), "a", s(1));
        nfa.add_transition(s(0), "a", s(2));
        let reached = nfa.run(&["a"]);
        assert_eq!(reached.len(), 2);
        assert!(reached.contains(&s(1)) && reached.contains(&s(2)));
    }

    #[test]
    fn reachability() {
        let mut nfa = Nfa::new(4, s(0));
        nfa.add_transition(s(0), "a", s(1));
        nfa.add_transition(s(1), "b", s(0));
        nfa.add_transition(s(2), "c", s(3));
        let reached = nfa.reachable_states();
        assert_eq!(reached.len(), 2);
        assert!(!reached.contains(&s(3)));
    }

    #[test]
    fn determinism_check() {
        let mut nfa = Nfa::new(3, s(0));
        nfa.add_transition(s(0), "a", s(1));
        nfa.add_transition(s(1), "a", s(2));
        assert!(nfa.is_deterministic());
        nfa.add_transition(s(0), "a", s(2));
        assert!(!nfa.is_deterministic());
    }

    #[test]
    fn map_labels_preserves_shape() {
        let nfa = counter_nfa();
        let mapped = nfa.map_labels(|l| l.len());
        assert_eq!(mapped.num_states(), nfa.num_states());
        assert_eq!(mapped.num_transitions(), nfa.num_transitions());
        assert!(mapped.accepts(&[3, 6, 3])); // inc, at_max, dec
    }

    #[test]
    fn display_of_states_is_one_based() {
        assert_eq!(s(0).to_string(), "q1");
        assert_eq!(s(6).to_string(), "q7");
        assert_eq!(s(2).index(), 2);
    }
}
