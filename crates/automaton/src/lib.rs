//! Labelled non-deterministic finite automata.
//!
//! The learned models of the DAC 2020 paper are NFAs whose transition labels
//! are synthesised predicates and in which *every* state is accepting — a
//! word is rejected only by running into a dead end. This crate provides the
//! generic automaton container [`Nfa<L>`] used both for learned models
//! (labels are predicate ids) and for the state-merge baseline (labels are
//! event names), together with the analyses the learning loop needs:
//! acceptance, path enumeration for the compliance check, reachability,
//! determinism checking, Graphviz export and isomorphism testing for the
//! test-suite.
//!
//! # Example
//!
//! ```
//! use tracelearn_automaton::{Nfa, StateId};
//!
//! // The 3-state anti-windup integrator shape from Fig. 4 of the paper.
//! let mut nfa = Nfa::new(3, StateId::new(0));
//! nfa.add_transition(StateId::new(0), "op' = op + ip", StateId::new(0));
//! nfa.add_transition(StateId::new(0), "saturated", StateId::new(1));
//! nfa.add_transition(StateId::new(1), "op' = op", StateId::new(1));
//! nfa.add_transition(StateId::new(1), "reset", StateId::new(2));
//! nfa.add_transition(StateId::new(2), "op' = 0", StateId::new(0));
//!
//! assert!(nfa.accepts(&["op' = op + ip", "saturated", "op' = op"]));
//! assert!(!nfa.accepts(&["saturated", "saturated"]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod dot;
mod nfa;
mod subset;

pub use crate::analysis::PathEnumeration;
pub use crate::nfa::{LabelId, Nfa, StateId, Transition};
pub use crate::subset::{SubsetState, SubsetTracker};
