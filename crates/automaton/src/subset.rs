//! Incremental subset tracking: the per-event core of online monitoring.
//!
//! Batch acceptance queries ([`Nfa::accepts_from_any_state`]) re-run a subset
//! construction over the whole word each time. A long-running monitor instead
//! keeps a [`SubsetTracker`]: the set of automaton states still reachable
//! after the labels pushed so far, stored as a bitset and updated in
//! O(|current states| × branching) per pushed label with zero allocation.
//! When the set drains empty the word has hit a dead end — in the all-states-
//! accepting semantics of the learned models, that is a rejection.
//!
//! # Example
//!
//! ```
//! use tracelearn_automaton::{Nfa, StateId, SubsetTracker};
//!
//! let mut nfa = Nfa::new(2, StateId::new(0));
//! nfa.add_transition(StateId::new(0), "a", StateId::new(1));
//! nfa.add_transition(StateId::new(1), "b", StateId::new(0));
//!
//! let mut tracker = SubsetTracker::from_all_states(&nfa);
//! assert!(tracker.push(&"a"));
//! assert!(tracker.push(&"b"));
//! assert!(!tracker.push(&"x")); // unknown label: dead end
//! assert!(!tracker.is_alive());
//!
//! // Trackers are reusable: reset instead of reallocating.
//! tracker.reset_to_all();
//! assert!(tracker.push(&"b")); // possible from state 1
//! ```

use crate::nfa::{LabelId, Nfa, StateId};
use std::hash::Hash;

/// The set of states an [`Nfa`] can currently be in, maintained incrementally
/// one pushed label at a time.
///
/// The tracker borrows the automaton and owns two fixed-size bit words
/// buffers (current and scratch), so its resident memory is
/// `2 × ⌈states / 64⌉ × 8` bytes regardless of how many labels are pushed —
/// the O(states) bound the monitoring session builds on.
#[derive(Debug, Clone)]
pub struct SubsetTracker<'a, L> {
    nfa: &'a Nfa<L>,
    /// Bitset of currently reachable states.
    current: Vec<u64>,
    /// Scratch bitset for the next frontier (kept to avoid reallocation).
    scratch: Vec<u64>,
    alive: bool,
}

impl<'a, L> SubsetTracker<'a, L>
where
    L: Clone + Eq + Hash,
{
    /// Creates a tracker whose state set is *all* states of `nfa` — the
    /// acceptance notion for words that start mid-execution
    /// (cf. [`Nfa::accepts_from_any_state`]).
    pub fn from_all_states(nfa: &'a Nfa<L>) -> Self {
        let mut tracker = Self::unset(nfa);
        tracker.reset_to_all();
        tracker
    }

    /// Creates a tracker whose state set is the initial state of `nfa`
    /// (cf. [`Nfa::run`]).
    pub fn from_initial(nfa: &'a Nfa<L>) -> Self {
        let mut tracker = Self::unset(nfa);
        tracker.reset_to_initial();
        tracker
    }

    fn unset(nfa: &'a Nfa<L>) -> Self {
        let words = nfa.num_states().div_ceil(64);
        SubsetTracker {
            nfa,
            current: vec![0; words],
            scratch: vec![0; words],
            alive: false,
        }
    }

    /// Resets the state set to all states, reusing the buffers.
    pub fn reset_to_all(&mut self) {
        let num_states = self.nfa.num_states();
        for (word_index, word) in self.current.iter_mut().enumerate() {
            let low = word_index * 64;
            let high = (low + 64).min(num_states);
            *word = if high - low == 64 {
                u64::MAX
            } else {
                (1u64 << (high - low)) - 1
            };
        }
        self.alive = true;
    }

    /// Resets the state set to the initial state, reusing the buffers.
    pub fn reset_to_initial(&mut self) {
        self.current.iter_mut().for_each(|word| *word = 0);
        let initial = self.nfa.initial().index();
        self.current[initial / 64] |= 1u64 << (initial % 64);
        self.alive = true;
    }

    /// Advances the set by one label: replaces it with the union of the
    /// successors of its members under `label`. Returns whether any state is
    /// still reachable. A label the automaton has never seen empties the set.
    pub fn push(&mut self, label: &L) -> bool {
        match self.nfa.label_id(label) {
            Some(id) => self.push_id(id),
            None => {
                self.current.iter_mut().for_each(|word| *word = 0);
                self.alive = false;
                false
            }
        }
    }

    /// Advances the set by a pre-interned label id (see [`Nfa::label_id`]),
    /// skipping the hash lookup of [`push`](SubsetTracker::push).
    pub fn push_id(&mut self, label_id: LabelId) -> bool {
        if !self.alive {
            return false;
        }
        self.scratch.iter_mut().for_each(|word| *word = 0);
        let mut any = false;
        for (word_index, &word) in self.current.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let bit = bits.trailing_zeros();
                bits &= bits - 1;
                let state = StateId::new((word_index * 64) as u32 + bit);
                for succ in self.nfa.successors_by_id(state, label_id) {
                    let index = succ.index();
                    self.scratch[index / 64] |= 1u64 << (index % 64);
                    any = true;
                }
            }
        }
        std::mem::swap(&mut self.current, &mut self.scratch);
        self.alive = any;
        any
    }

    /// Whether at least one state is still reachable.
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// Number of currently reachable states.
    pub fn len(&self) -> usize {
        self.current
            .iter()
            .map(|word| word.count_ones() as usize)
            .sum()
    }

    /// Whether the reachable set is empty (the word hit a dead end).
    pub fn is_empty(&self) -> bool {
        !self.alive
    }

    /// Whether `state` is in the current reachable set.
    pub fn contains(&self, state: StateId) -> bool {
        let index = state.index();
        index < self.nfa.num_states() && self.current[index / 64] & (1u64 << (index % 64)) != 0
    }

    /// The currently reachable states, in index order.
    pub fn states(&self) -> impl Iterator<Item = StateId> + '_ {
        self.current
            .iter()
            .enumerate()
            .flat_map(|(word_index, &word)| {
                (0..64u32)
                    .filter(move |bit| word & (1u64 << bit) != 0)
                    .map(move |bit| StateId::new((word_index * 64) as u32 + bit))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> StateId {
        StateId::new(i)
    }

    fn counter_nfa() -> Nfa<&'static str> {
        let mut nfa = Nfa::new(4, s(0));
        nfa.add_transition(s(0), "inc", s(0));
        nfa.add_transition(s(0), "at_max", s(1));
        nfa.add_transition(s(1), "dec", s(2));
        nfa.add_transition(s(2), "dec", s(2));
        nfa.add_transition(s(2), "at_min", s(3));
        nfa.add_transition(s(3), "inc", s(0));
        nfa
    }

    #[test]
    fn tracks_reachable_set_per_label() {
        let nfa = counter_nfa();
        let mut tracker = SubsetTracker::from_all_states(&nfa);
        assert_eq!(tracker.len(), 4);
        assert!(tracker.push(&"dec"));
        // dec is possible from q2 (to q3) and q3 (to q3): {q3}.
        assert_eq!(tracker.states().collect::<Vec<_>>(), vec![s(2)]);
        assert!(tracker.push(&"at_min"));
        assert!(tracker.contains(s(3)));
        assert!(!tracker.contains(s(0)));
        assert!(tracker.push(&"inc"));
        assert_eq!(tracker.states().collect::<Vec<_>>(), vec![s(0)]);
    }

    #[test]
    fn dead_end_and_reset() {
        let nfa = counter_nfa();
        let mut tracker = SubsetTracker::from_all_states(&nfa);
        assert!(tracker.push(&"at_max"));
        assert!(!tracker.push(&"at_max"));
        assert!(tracker.is_empty());
        assert_eq!(tracker.len(), 0);
        // Further pushes stay dead without panicking.
        assert!(!tracker.push(&"inc"));
        tracker.reset_to_all();
        assert!(tracker.is_alive());
        assert_eq!(tracker.len(), 4);
    }

    #[test]
    fn unknown_label_kills_the_set() {
        let nfa = counter_nfa();
        let mut tracker = SubsetTracker::from_all_states(&nfa);
        assert!(!tracker.push(&"no-such-label"));
        assert!(tracker.is_empty());
    }

    #[test]
    fn from_initial_matches_run() {
        let nfa = counter_nfa();
        let word = ["inc", "at_max", "dec", "dec"];
        let mut tracker = SubsetTracker::from_initial(&nfa);
        for label in &word {
            tracker.push(label);
        }
        assert_eq!(
            tracker.states().collect::<std::collections::BTreeSet<_>>(),
            nfa.run(&word)
        );
    }

    #[test]
    fn agrees_with_batch_acceptance() {
        let nfa = counter_nfa();
        let words: [&[&str]; 5] = [
            &[],
            &["dec", "at_min", "inc"],
            &["at_max", "at_max"],
            &["inc", "at_max", "dec"],
            &["bogus"],
        ];
        for word in words {
            let mut tracker = SubsetTracker::from_all_states(&nfa);
            let incremental = word.iter().all(|l| tracker.push(l));
            assert_eq!(
                incremental,
                nfa.accepts_from_any_state(word),
                "disagreement on {word:?}"
            );
        }
    }

    #[test]
    fn wide_automata_span_multiple_bitset_words() {
        // 130 states forces three 64-bit words; a chain a→a→… keeps exactly
        // one bit alive and walks it across word boundaries.
        let n = 130;
        let mut nfa = Nfa::new(n, s(0));
        for i in 0..(n - 1) as u32 {
            nfa.add_transition(s(i), "step", s(i + 1));
        }
        let mut tracker = SubsetTracker::from_initial(&nfa);
        for i in 1..n as u32 {
            assert!(tracker.push(&"step"));
            assert_eq!(tracker.states().collect::<Vec<_>>(), vec![s(i)]);
        }
        assert!(!tracker.push(&"step")); // fell off the end of the chain
        let mut all = SubsetTracker::from_all_states(&nfa);
        assert_eq!(all.len(), n);
        assert!(all.push(&"step"));
        assert_eq!(all.len(), n - 1); // every state but the last has a successor
    }
}
