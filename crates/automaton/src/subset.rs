//! Incremental subset tracking: the per-event core of online monitoring.
//!
//! Batch acceptance queries ([`Nfa::accepts_from_any_state`]) re-run a subset
//! construction over the whole word each time. A long-running monitor instead
//! keeps the set of automaton states still reachable after the labels pushed
//! so far, stored as a bitset and updated in O(|current states| × branching)
//! per pushed label with zero allocation. When the set drains empty the word
//! has hit a dead end — in the all-states-accepting semantics of the learned
//! models, that is a rejection.
//!
//! Two entry points share one implementation:
//!
//! - [`SubsetState`] owns only the bitset buffers and takes the automaton as
//!   a parameter on every step. Being lifetime-free, it can live inside
//!   long-lived session objects that own their model behind an `Arc` (the
//!   serving daemon's hot-reload path) and can be checkpointed byte-for-byte
//!   ([`SubsetState::words`]).
//! - [`SubsetTracker`] borrows the automaton once and carries it along — the
//!   ergonomic choice when the automaton demonstrably outlives the tracker.
//!
//! # Example
//!
//! ```
//! use tracelearn_automaton::{Nfa, StateId, SubsetTracker};
//!
//! let mut nfa = Nfa::new(2, StateId::new(0));
//! nfa.add_transition(StateId::new(0), "a", StateId::new(1));
//! nfa.add_transition(StateId::new(1), "b", StateId::new(0));
//!
//! let mut tracker = SubsetTracker::from_all_states(&nfa);
//! assert!(tracker.push(&"a"));
//! assert!(tracker.push(&"b"));
//! assert!(!tracker.push(&"x")); // unknown label: dead end
//! assert!(!tracker.is_alive());
//!
//! // Trackers are reusable: reset instead of reallocating.
//! tracker.reset_to_all();
//! assert!(tracker.push(&"b")); // possible from state 1
//! ```

use crate::nfa::{LabelId, Nfa, StateId};
use std::hash::Hash;

/// The set of states an [`Nfa`] can currently be in, maintained incrementally
/// one stepped label at a time, *without* borrowing the automaton.
///
/// The state owns two fixed-size bit-word buffers (current and scratch), so
/// its resident memory is `2 × ⌈states / 64⌉ × 8` bytes regardless of how
/// many labels are stepped — the O(states) bound the monitoring session
/// builds on. Every stepping method takes the automaton as a parameter; it
/// must be the same automaton (same state count) the state was created for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubsetState {
    /// Bitset of currently reachable states.
    current: Vec<u64>,
    /// Scratch bitset for the next frontier (kept to avoid reallocation).
    scratch: Vec<u64>,
    alive: bool,
}

impl SubsetState {
    /// Creates a state set containing *all* states of `nfa` — the acceptance
    /// notion for words that start mid-execution
    /// (cf. [`Nfa::accepts_from_any_state`]).
    pub fn all_states<L: Clone + Eq + Hash>(nfa: &Nfa<L>) -> Self {
        let mut state = Self::unset(nfa.num_states());
        state.reset_to_all(nfa);
        state
    }

    /// Creates a state set containing the initial state of `nfa`
    /// (cf. [`Nfa::run`]).
    pub fn initial<L: Clone + Eq + Hash>(nfa: &Nfa<L>) -> Self {
        let mut state = Self::unset(nfa.num_states());
        state.reset_to_initial(nfa);
        state
    }

    fn unset(num_states: usize) -> Self {
        let words = num_states.div_ceil(64);
        SubsetState {
            current: vec![0; words],
            scratch: vec![0; words],
            alive: false,
        }
    }

    /// Resets the state set to all states of `nfa`, reusing the buffers.
    pub fn reset_to_all<L: Clone + Eq + Hash>(&mut self, nfa: &Nfa<L>) {
        debug_assert_eq!(self.current.len(), nfa.num_states().div_ceil(64));
        let num_states = nfa.num_states();
        for (word_index, word) in self.current.iter_mut().enumerate() {
            let low = word_index * 64;
            let high = (low + 64).min(num_states);
            *word = if high - low == 64 {
                u64::MAX
            } else {
                (1u64 << (high - low)) - 1
            };
        }
        self.alive = true;
    }

    /// Resets the state set to the initial state of `nfa`, reusing the
    /// buffers.
    pub fn reset_to_initial<L: Clone + Eq + Hash>(&mut self, nfa: &Nfa<L>) {
        debug_assert_eq!(self.current.len(), nfa.num_states().div_ceil(64));
        self.current.iter_mut().for_each(|word| *word = 0);
        let initial = nfa.initial().index();
        self.current[initial / 64] |= 1u64 << (initial % 64);
        self.alive = true;
    }

    /// Advances the set by one label: replaces it with the union of the
    /// successors of its members under `label`. Returns whether any state is
    /// still reachable. A label the automaton has never seen empties the set.
    pub fn step<L>(&mut self, nfa: &Nfa<L>, label: &L) -> bool
    where
        L: Clone + Eq + Hash,
    {
        match nfa.label_id(label) {
            Some(id) => self.step_id(nfa, id),
            None => {
                self.current.iter_mut().for_each(|word| *word = 0);
                self.alive = false;
                false
            }
        }
    }

    /// Advances the set by a pre-interned label id (see [`Nfa::label_id`]),
    /// skipping the hash lookup of [`step`](SubsetState::step).
    pub fn step_id<L: Clone + Eq + Hash>(&mut self, nfa: &Nfa<L>, label_id: LabelId) -> bool {
        debug_assert_eq!(self.current.len(), nfa.num_states().div_ceil(64));
        if !self.alive {
            return false;
        }
        self.scratch.iter_mut().for_each(|word| *word = 0);
        let mut any = false;
        for (word_index, &word) in self.current.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let bit = bits.trailing_zeros();
                bits &= bits - 1;
                let state = StateId::new((word_index * 64) as u32 + bit);
                for succ in nfa.successors_by_id(state, label_id) {
                    let index = succ.index();
                    self.scratch[index / 64] |= 1u64 << (index % 64);
                    any = true;
                }
            }
        }
        std::mem::swap(&mut self.current, &mut self.scratch);
        self.alive = any;
        any
    }

    /// Whether at least one state is still reachable.
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// Number of currently reachable states.
    pub fn len(&self) -> usize {
        self.current
            .iter()
            .map(|word| word.count_ones() as usize)
            .sum()
    }

    /// Whether the reachable set is empty (the word hit a dead end).
    pub fn is_empty(&self) -> bool {
        !self.alive
    }

    /// Whether `state` is in the current reachable set.
    pub fn contains(&self, state: StateId) -> bool {
        let index = state.index();
        index / 64 < self.current.len() && self.current[index / 64] & (1u64 << (index % 64)) != 0
    }

    /// The currently reachable states, in index order.
    pub fn states(&self) -> impl Iterator<Item = StateId> + '_ {
        self.current
            .iter()
            .enumerate()
            .flat_map(|(word_index, &word)| {
                (0..64u32)
                    .filter(move |bit| word & (1u64 << bit) != 0)
                    .map(move |bit| StateId::new((word_index * 64) as u32 + bit))
            })
    }

    /// The raw bit words of the current reachable set, in index order — the
    /// checkpointable image of the tracker (together with
    /// [`is_alive`](SubsetState::is_alive)).
    pub fn words(&self) -> &[u64] {
        &self.current
    }
}

/// The set of states an [`Nfa`] can currently be in, maintained incrementally
/// one pushed label at a time.
///
/// A thin wrapper pairing a [`SubsetState`] with a borrow of its automaton,
/// for callers where the automaton demonstrably outlives the tracker. The
/// resident-memory bound of [`SubsetState`] carries over unchanged.
#[derive(Debug, Clone)]
pub struct SubsetTracker<'a, L> {
    nfa: &'a Nfa<L>,
    state: SubsetState,
}

impl<'a, L> SubsetTracker<'a, L>
where
    L: Clone + Eq + Hash,
{
    /// Creates a tracker whose state set is *all* states of `nfa` — the
    /// acceptance notion for words that start mid-execution
    /// (cf. [`Nfa::accepts_from_any_state`]).
    pub fn from_all_states(nfa: &'a Nfa<L>) -> Self {
        SubsetTracker {
            nfa,
            state: SubsetState::all_states(nfa),
        }
    }

    /// Creates a tracker whose state set is the initial state of `nfa`
    /// (cf. [`Nfa::run`]).
    pub fn from_initial(nfa: &'a Nfa<L>) -> Self {
        SubsetTracker {
            nfa,
            state: SubsetState::initial(nfa),
        }
    }

    /// Resets the state set to all states, reusing the buffers.
    pub fn reset_to_all(&mut self) {
        self.state.reset_to_all(self.nfa);
    }

    /// Resets the state set to the initial state, reusing the buffers.
    pub fn reset_to_initial(&mut self) {
        self.state.reset_to_initial(self.nfa);
    }

    /// Advances the set by one label: replaces it with the union of the
    /// successors of its members under `label`. Returns whether any state is
    /// still reachable. A label the automaton has never seen empties the set.
    pub fn push(&mut self, label: &L) -> bool {
        self.state.step(self.nfa, label)
    }

    /// Advances the set by a pre-interned label id (see [`Nfa::label_id`]),
    /// skipping the hash lookup of [`push`](SubsetTracker::push).
    pub fn push_id(&mut self, label_id: LabelId) -> bool {
        self.state.step_id(self.nfa, label_id)
    }

    /// Whether at least one state is still reachable.
    pub fn is_alive(&self) -> bool {
        self.state.is_alive()
    }

    /// Number of currently reachable states.
    pub fn len(&self) -> usize {
        self.state.len()
    }

    /// Whether the reachable set is empty (the word hit a dead end).
    pub fn is_empty(&self) -> bool {
        self.state.is_empty()
    }

    /// Whether `state` is in the current reachable set.
    pub fn contains(&self, state: StateId) -> bool {
        self.state.contains(state)
    }

    /// The currently reachable states, in index order.
    pub fn states(&self) -> impl Iterator<Item = StateId> + '_ {
        self.state.states()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> StateId {
        StateId::new(i)
    }

    fn counter_nfa() -> Nfa<&'static str> {
        let mut nfa = Nfa::new(4, s(0));
        nfa.add_transition(s(0), "inc", s(0));
        nfa.add_transition(s(0), "at_max", s(1));
        nfa.add_transition(s(1), "dec", s(2));
        nfa.add_transition(s(2), "dec", s(2));
        nfa.add_transition(s(2), "at_min", s(3));
        nfa.add_transition(s(3), "inc", s(0));
        nfa
    }

    #[test]
    fn tracks_reachable_set_per_label() {
        let nfa = counter_nfa();
        let mut tracker = SubsetTracker::from_all_states(&nfa);
        assert_eq!(tracker.len(), 4);
        assert!(tracker.push(&"dec"));
        // dec is possible from q2 (to q3) and q3 (to q3): {q3}.
        assert_eq!(tracker.states().collect::<Vec<_>>(), vec![s(2)]);
        assert!(tracker.push(&"at_min"));
        assert!(tracker.contains(s(3)));
        assert!(!tracker.contains(s(0)));
        assert!(tracker.push(&"inc"));
        assert_eq!(tracker.states().collect::<Vec<_>>(), vec![s(0)]);
    }

    #[test]
    fn dead_end_and_reset() {
        let nfa = counter_nfa();
        let mut tracker = SubsetTracker::from_all_states(&nfa);
        assert!(tracker.push(&"at_max"));
        assert!(!tracker.push(&"at_max"));
        assert!(tracker.is_empty());
        assert_eq!(tracker.len(), 0);
        // Further pushes stay dead without panicking.
        assert!(!tracker.push(&"inc"));
        tracker.reset_to_all();
        assert!(tracker.is_alive());
        assert_eq!(tracker.len(), 4);
    }

    #[test]
    fn unknown_label_kills_the_set() {
        let nfa = counter_nfa();
        let mut tracker = SubsetTracker::from_all_states(&nfa);
        assert!(!tracker.push(&"no-such-label"));
        assert!(tracker.is_empty());
    }

    #[test]
    fn from_initial_matches_run() {
        let nfa = counter_nfa();
        let word = ["inc", "at_max", "dec", "dec"];
        let mut tracker = SubsetTracker::from_initial(&nfa);
        for label in &word {
            tracker.push(label);
        }
        assert_eq!(
            tracker.states().collect::<std::collections::BTreeSet<_>>(),
            nfa.run(&word)
        );
    }

    #[test]
    fn agrees_with_batch_acceptance() {
        let nfa = counter_nfa();
        let words: [&[&str]; 5] = [
            &[],
            &["dec", "at_min", "inc"],
            &["at_max", "at_max"],
            &["inc", "at_max", "dec"],
            &["bogus"],
        ];
        for word in words {
            let mut tracker = SubsetTracker::from_all_states(&nfa);
            let incremental = word.iter().all(|l| tracker.push(l));
            assert_eq!(
                incremental,
                nfa.accepts_from_any_state(word),
                "disagreement on {word:?}"
            );
        }
    }

    #[test]
    fn wide_automata_span_multiple_bitset_words() {
        // 130 states forces three 64-bit words; a chain a→a→… keeps exactly
        // one bit alive and walks it across word boundaries.
        let n = 130;
        let mut nfa = Nfa::new(n, s(0));
        for i in 0..(n - 1) as u32 {
            nfa.add_transition(s(i), "step", s(i + 1));
        }
        let mut tracker = SubsetTracker::from_initial(&nfa);
        for i in 1..n as u32 {
            assert!(tracker.push(&"step"));
            assert_eq!(tracker.states().collect::<Vec<_>>(), vec![s(i)]);
        }
        assert!(!tracker.push(&"step")); // fell off the end of the chain
        let mut all = SubsetTracker::from_all_states(&nfa);
        assert_eq!(all.len(), n);
        assert!(all.push(&"step"));
        assert_eq!(all.len(), n - 1); // every state but the last has a successor
    }

    #[test]
    fn owned_state_matches_tracker_and_exposes_words() {
        let nfa = counter_nfa();
        let mut owned = SubsetState::all_states(&nfa);
        let mut tracker = SubsetTracker::from_all_states(&nfa);
        for label in ["dec", "at_min", "inc", "at_max"] {
            assert_eq!(owned.step(&nfa, &label), tracker.push(&label));
            assert_eq!(
                owned.states().collect::<Vec<_>>(),
                tracker.states().collect::<Vec<_>>()
            );
        }
        // The checkpoint image round-trips through a plain clone compare.
        let snapshot = (owned.words().to_vec(), owned.is_alive());
        let clone = owned.clone();
        assert_eq!((clone.words().to_vec(), clone.is_alive()), snapshot);
    }
}
