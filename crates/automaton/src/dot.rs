//! Graphviz (dot) export of automata, for the figures of the paper.

use crate::nfa::Nfa;
use std::fmt::Display;
use std::hash::Hash;

impl<L> Nfa<L>
where
    L: Clone + Eq + Hash + Display,
{
    /// Renders the automaton in Graphviz dot syntax.
    ///
    /// The output mirrors the figures of the paper: circles for states named
    /// `q1 … qN`, a free-floating arrow into the initial state and one edge
    /// per transition labelled with its predicate.
    ///
    /// # Example
    ///
    /// ```
    /// use tracelearn_automaton::{Nfa, StateId};
    ///
    /// let mut nfa = Nfa::new(2, StateId::new(0));
    /// nfa.add_transition(StateId::new(0), "x' = x + 1", StateId::new(1));
    /// let dot = nfa.to_dot("counter");
    /// assert!(dot.contains("digraph counter"));
    /// assert!(dot.contains("q1 -> q2"));
    /// ```
    pub fn to_dot(&self, name: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("digraph {name} {{\n"));
        out.push_str("  rankdir=LR;\n");
        out.push_str("  node [shape=circle];\n");
        out.push_str("  __start [shape=none, label=\"\"];\n");
        out.push_str(&format!("  __start -> {};\n", self.initial()));
        for state in self.states() {
            out.push_str(&format!("  {state} [label=\"{state}\"];\n"));
        }
        for t in self.transitions() {
            let label = escape(&t.label.to_string());
            out.push_str(&format!("  {} -> {} [label=\"{label}\"];\n", t.from, t.to));
        }
        out.push_str("}\n");
        out
    }
}

fn escape(label: &str) -> String {
    label.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use crate::nfa::{Nfa, StateId};

    #[test]
    fn dot_contains_all_elements() {
        let mut nfa = Nfa::new(3, StateId::new(1));
        nfa.add_transition(StateId::new(1), "a", StateId::new(0));
        nfa.add_transition(StateId::new(0), "b", StateId::new(2));
        let dot = nfa.to_dot("model");
        assert!(dot.starts_with("digraph model {"));
        assert!(dot.contains("__start -> q2;"));
        assert!(dot.contains("q2 -> q1 [label=\"a\"];"));
        assert!(dot.contains("q1 -> q3 [label=\"b\"];"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn labels_are_escaped() {
        let mut nfa = Nfa::new(1, StateId::new(0));
        nfa.add_transition(StateId::new(0), "say \"hi\"", StateId::new(0));
        let dot = nfa.to_dot("m");
        assert!(dot.contains("say \\\"hi\\\""));
    }
}
