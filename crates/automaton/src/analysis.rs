//! Path enumeration, isomorphism checking and other analyses used by the
//! learning loop and the test-suite.

use crate::nfa::{Nfa, StateId};
use std::collections::BTreeSet;
use std::hash::Hash;

/// Enumeration of label paths of a fixed length, the ingredient of the
/// paper's compliance check (`S_l ⊆ P_l`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathEnumeration<L> {
    /// The distinct label sequences of the requested length that are
    /// realisable in the automaton (starting from *any* state).
    pub paths: Vec<Vec<L>>,
}

impl<L> Nfa<L>
where
    L: Clone + Eq + Hash + Ord,
{
    /// Enumerates every distinct sequence of `length` labels that can be
    /// traversed consecutively in the automaton, starting from any state.
    ///
    /// The learner compares this set against the subsequences of the
    /// predicate sequence; any path not occurring in the trace is an invalid
    /// generalisation and is excluded in the next refinement iteration.
    pub fn label_paths(&self, length: usize) -> PathEnumeration<L> {
        let mut paths = BTreeSet::new();
        if length == 0 {
            return PathEnumeration { paths: Vec::new() };
        }
        for state in self.states() {
            let mut stack: Vec<(StateId, Vec<L>)> = vec![(state, Vec::new())];
            while let Some((current, prefix)) = stack.pop() {
                if prefix.len() == length {
                    paths.insert(prefix);
                    continue;
                }
                for t in self.outgoing(current) {
                    let mut extended = prefix.clone();
                    extended.push(t.label.clone());
                    stack.push((t.to, extended));
                }
            }
        }
        PathEnumeration {
            paths: paths.into_iter().collect(),
        }
    }

    /// Enumerates every distinct sequence of `length` labels realisable
    /// starting from the initial state only.
    pub fn label_paths_from_initial(&self, length: usize) -> PathEnumeration<L> {
        let mut paths = BTreeSet::new();
        let mut stack: Vec<(StateId, Vec<L>)> = vec![(self.initial(), Vec::new())];
        while let Some((current, prefix)) = stack.pop() {
            if prefix.len() == length {
                paths.insert(prefix);
                continue;
            }
            for t in self.outgoing(current) {
                let mut extended = prefix.clone();
                extended.push(t.label.clone());
                stack.push((t.to, extended));
            }
        }
        PathEnumeration {
            paths: paths.into_iter().collect(),
        }
    }

    /// Checks whether two automata are isomorphic: equal up to a renaming of
    /// states that maps initial state to initial state and preserves every
    /// transition. Intended for test assertions on small learned models.
    pub fn is_isomorphic_to(&self, other: &Nfa<L>) -> bool {
        if self.num_states() != other.num_states()
            || self.num_transitions() != other.num_transitions()
        {
            return false;
        }
        let n = self.num_states();
        // Backtracking search over state mappings. Candidate models are tiny
        // (≤ 10 states in the paper's benchmarks), so this is cheap.
        let mut mapping: Vec<Option<StateId>> = vec![None; n];
        let mut used = vec![false; n];
        mapping[self.initial().index()] = Some(other.initial());
        used[other.initial().index()] = true;
        self.search_isomorphism(other, &mut mapping, &mut used, 0)
    }

    fn search_isomorphism(
        &self,
        other: &Nfa<L>,
        mapping: &mut Vec<Option<StateId>>,
        used: &mut Vec<bool>,
        next_unmapped: usize,
    ) -> bool {
        // Find the next state without an image.
        let mut index = next_unmapped;
        while index < mapping.len() && mapping[index].is_some() {
            index += 1;
        }
        if index == mapping.len() {
            return self.mapping_preserves_transitions(other, mapping);
        }
        for candidate in 0..mapping.len() {
            if used[candidate] {
                continue;
            }
            mapping[index] = Some(StateId::new(candidate as u32));
            used[candidate] = true;
            // Prune early: partial mappings must not already violate any
            // fully-mapped transition.
            if self.partial_mapping_consistent(other, mapping)
                && self.search_isomorphism(other, mapping, used, index + 1)
            {
                return true;
            }
            mapping[index] = None;
            used[candidate] = false;
        }
        false
    }

    fn partial_mapping_consistent(&self, other: &Nfa<L>, mapping: &[Option<StateId>]) -> bool {
        for t in self.transitions() {
            if let (Some(from), Some(to)) = (mapping[t.from.index()], mapping[t.to.index()]) {
                if !other.successors(from, &t.label).contains(&to) {
                    return false;
                }
            }
        }
        true
    }

    fn mapping_preserves_transitions(&self, other: &Nfa<L>, mapping: &[Option<StateId>]) -> bool {
        // With equal transition counts, checking the forward direction for
        // every transition is enough for a bijection on transitions as well.
        self.transitions().iter().all(|t| {
            let from = mapping[t.from.index()].expect("total mapping");
            let to = mapping[t.to.index()].expect("total mapping");
            other.successors(from, &t.label).contains(&to)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> StateId {
        StateId::new(i)
    }

    fn cycle(labels: [&'static str; 3]) -> Nfa<&'static str> {
        let mut nfa = Nfa::new(3, s(0));
        nfa.add_transition(s(0), labels[0], s(1));
        nfa.add_transition(s(1), labels[1], s(2));
        nfa.add_transition(s(2), labels[2], s(0));
        nfa
    }

    #[test]
    fn label_paths_of_length_two() {
        let nfa = cycle(["a", "b", "c"]);
        let paths = nfa.label_paths(2);
        let expected: BTreeSet<Vec<&str>> = [vec!["a", "b"], vec!["b", "c"], vec!["c", "a"]]
            .into_iter()
            .collect();
        let actual: BTreeSet<Vec<&str>> = paths.paths.into_iter().collect();
        assert_eq!(actual, expected);
    }

    #[test]
    fn label_paths_zero_length_is_empty() {
        let nfa = cycle(["a", "b", "c"]);
        assert!(nfa.label_paths(0).paths.is_empty());
    }

    #[test]
    fn label_paths_longer_than_any_walk() {
        let mut nfa = Nfa::new(2, s(0));
        nfa.add_transition(s(0), "a", s(1));
        // Only one transition: no length-2 paths exist.
        assert!(nfa.label_paths(2).paths.is_empty());
        assert_eq!(nfa.label_paths(1).paths, vec![vec!["a"]]);
    }

    #[test]
    fn label_paths_from_initial_are_a_subset() {
        let nfa = cycle(["a", "b", "c"]);
        let from_initial = nfa.label_paths_from_initial(2);
        assert_eq!(from_initial.paths, vec![vec!["a", "b"]]);
    }

    #[test]
    fn nondeterminism_branches_appear_in_paths() {
        let mut nfa = Nfa::new(3, s(0));
        nfa.add_transition(s(0), "a", s(1));
        nfa.add_transition(s(0), "a", s(2));
        nfa.add_transition(s(1), "b", s(0));
        nfa.add_transition(s(2), "c", s(0));
        let paths: BTreeSet<_> = nfa.label_paths(2).paths.into_iter().collect();
        assert!(paths.contains(&vec!["a", "b"]));
        assert!(paths.contains(&vec!["a", "c"]));
    }

    #[test]
    fn isomorphic_relabelled_cycles() {
        let a = cycle(["x", "y", "z"]);
        // Same structure, states listed in a different order.
        let mut b = Nfa::new(3, s(2));
        b.add_transition(s(2), "x", s(0));
        b.add_transition(s(0), "y", s(1));
        b.add_transition(s(1), "z", s(2));
        assert!(a.is_isomorphic_to(&b));
        assert!(b.is_isomorphic_to(&a));
    }

    #[test]
    fn non_isomorphic_different_labels() {
        let a = cycle(["x", "y", "z"]);
        let b = cycle(["x", "y", "w"]);
        assert!(!a.is_isomorphic_to(&b));
    }

    #[test]
    fn non_isomorphic_different_counts() {
        let a = cycle(["x", "y", "z"]);
        let mut b = Nfa::new(4, s(0));
        b.add_transition(s(0), "x", s(1));
        assert!(!a.is_isomorphic_to(&b));
    }

    #[test]
    fn isomorphism_respects_initial_state() {
        let mut a = Nfa::new(2, s(0));
        a.add_transition(s(0), "x", s(1));
        let mut b = Nfa::new(2, s(1));
        b.add_transition(s(1), "x", s(0));
        assert!(a.is_isomorphic_to(&b));
        let mut c = Nfa::new(2, s(1));
        c.add_transition(s(0), "x", s(1));
        assert!(!a.is_isomorphic_to(&c));
    }

    #[test]
    fn self_isomorphism() {
        let a = cycle(["p", "q", "r"]);
        assert!(a.is_isomorphic_to(&a));
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        fn random_nfa() -> impl Strategy<Value = Nfa<u8>> {
            (2usize..5).prop_flat_map(|n| {
                proptest::collection::vec((0..n, 0u8..3, 0..n), 1..10).prop_map(move |edges| {
                    let mut nfa = Nfa::new(n, StateId::new(0));
                    for (from, label, to) in edges {
                        nfa.add_transition(
                            StateId::new(from as u32),
                            label,
                            StateId::new(to as u32),
                        );
                    }
                    nfa
                })
            })
        }

        proptest! {
            /// Any automaton is isomorphic to a copy of itself with permuted state ids.
            #[test]
            fn isomorphic_to_permuted_self(nfa in random_nfa(), seed in 0u64..1000) {
                let n = nfa.num_states();
                // Build a permutation from the seed.
                let mut perm: Vec<usize> = (0..n).collect();
                let mut state = seed;
                for i in (1..n).rev() {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let j = (state >> 33) as usize % (i + 1);
                    perm.swap(i, j);
                }
                let mut permuted = Nfa::new(n, StateId::new(perm[nfa.initial().index()] as u32));
                for t in nfa.transitions() {
                    permuted.add_transition(
                        StateId::new(perm[t.from.index()] as u32),
                        t.label,
                        StateId::new(perm[t.to.index()] as u32),
                    );
                }
                prop_assert!(nfa.is_isomorphic_to(&permuted));
            }

            /// Every enumerated label path is genuinely traversable from some state.
            #[test]
            fn label_paths_are_traversable(nfa in random_nfa()) {
                for path in nfa.label_paths(2).paths {
                    prop_assert!(nfa.accepts_from_any_state(&path));
                }
            }
        }
    }
}
