//! `tracelearn` — learning concise automaton models from long execution
//! traces.
//!
//! This is the umbrella crate of the workspace reproducing *Learning Concise
//! Models from Long Execution Traces* (Jeppu, Melham, Kroening, O'Leary —
//! DAC 2020). It re-exports the public API of the member crates so that a
//! downstream user only needs a single dependency:
//!
//! * [`trace`] — the execution-trace data model;
//! * [`expr`] — the transition-predicate language;
//! * [`synth`] — synthesis of update functions and guards from examples;
//! * [`sat`] — the CDCL SAT solver used for model construction;
//! * [`automaton`] — labelled NFAs, path analyses and Graphviz export;
//! * [`learn`] — the learner itself (predicate generation, segmentation,
//!   SAT-based construction, compliance refinement);
//! * [`statemerge`] — the kTails/EDSM baseline;
//! * [`workloads`] — simulators of the paper's six benchmark systems;
//! * [`serve`] — the incremental model-serving daemon (one bounded-memory
//!   monitoring session per event stream).
//!
//! # Quickstart
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use tracelearn::learn::{Learner, LearnerConfig};
//! use tracelearn::workloads::counter;
//!
//! // Record (here: simulate) an execution trace …
//! let trace = counter::generate(&counter::CounterConfig { threshold: 8, length: 100 });
//!
//! // … and learn a concise model from it.
//! let model = Learner::new(LearnerConfig::default()).learn(&trace)?;
//! println!("{}", model.to_dot("counter"));
//! assert!(model.num_states() <= 4);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tracelearn_automaton as automaton;
pub use tracelearn_core as learn;
pub use tracelearn_expr as expr;
pub use tracelearn_sat as sat;
pub use tracelearn_serve as serve;
pub use tracelearn_statemerge as statemerge;
pub use tracelearn_synth as synth;
pub use tracelearn_trace as trace;
pub use tracelearn_workloads as workloads;

/// The most commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use tracelearn_automaton::{Nfa, StateId};
    pub use tracelearn_core::{
        LearnError, LearnedModel, Learner, LearnerConfig, Monitor, MonitorReport, MonitorSession,
    };
    pub use tracelearn_statemerge::{MergeAlgorithm, StateMergeConfig, StateMergeLearner};
    pub use tracelearn_synth::{SynthesisConfig, Synthesizer};
    pub use tracelearn_trace::{Signature, StreamingCsvReader, Trace, TraceSet, Value};
    pub use tracelearn_workloads::Workload;
}
