//! Quickstart: record a trace of your own system and learn a model from it.
//!
//! This example builds a trace by hand — exactly what you would get from
//! instrumenting a program with print statements and parsing the log — and
//! learns a concise automaton from it. Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::error::Error;
use tracelearn::prelude::*;

fn main() -> Result<(), Box<dyn Error>> {
    // The system under observation: a little elevator that travels between
    // floor 0 and floor 3, opening its doors at every stop. We observe two
    // variables: the floor (an integer) and the door action (an event).
    let signature = Signature::builder().event("door").int("floor").build();
    let mut trace = Trace::new(signature);

    let mut floor = 0i64;
    let mut direction = 1i64;
    for step in 0..200 {
        let action = if step % 5 == 4 {
            "open"
        } else if direction > 0 {
            "up"
        } else {
            "down"
        };
        trace.push_named_row(vec![
            tracelearn::trace::RowEntry::Event(action),
            tracelearn::trace::RowEntry::Value(Value::Int(floor)),
        ])?;
        match action {
            "up" => floor += 1,
            "down" => floor -= 1,
            _ => {}
        }
        if floor >= 3 {
            direction = -1;
        } else if floor <= 0 {
            direction = 1;
        }
    }

    // Learn a model with the paper's default parameters (w = 3, l = 2).
    let learner = Learner::new(LearnerConfig::default());
    let model = learner.learn(&trace)?;

    println!(
        "learned a {}-state model with {} transitions from {} observations",
        model.num_states(),
        model.num_transitions(),
        trace.len()
    );
    println!("\ntransition predicates:");
    for predicate in model.predicate_strings() {
        println!("  {predicate}");
    }
    println!("\nGraphviz (render with `dot -Tpdf`):\n");
    println!("{}", model.to_dot("elevator"));

    let stats = model.stats();
    println!(
        "stats: {} windows handed to the solver, {} SAT queries, {:?} total",
        stats.solver_windows, stats.sat_queries, stats.total_time
    );
    Ok(())
}
