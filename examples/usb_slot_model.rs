//! Reproduces the paper's headline example (Fig. 1): learning the USB xHCI
//! slot state machine from a trace of slot commands, and comparing the
//! learned model against the datasheet ground truth.
//!
//! ```text
//! cargo run --example usb_slot_model
//! ```

use std::error::Error;
use tracelearn::automaton::{Nfa, StateId};
use tracelearn::prelude::*;
use tracelearn::workloads::usb_slot;

/// The slot state machine as drawn in the Intel datasheet (paper Fig. 1a),
/// restricted to the transitions a storage-device workload exercises.
fn datasheet_model() -> Nfa<&'static str> {
    let mut nfa = Nfa::new(4, StateId::new(0));
    let disabled = StateId::new(0);
    let enabled = StateId::new(1);
    let addressed = StateId::new(2);
    let configured = StateId::new(3);
    nfa.add_transition(disabled, "CR_ENABLE_SLOT", enabled);
    nfa.add_transition(enabled, "CR_ADDR_DEV", addressed);
    nfa.add_transition(addressed, "CR_CONFIG_END", configured);
    nfa.add_transition(configured, "CR_CONFIG_END", configured);
    nfa.add_transition(configured, "CR_STOP_END", configured);
    nfa.add_transition(configured, "CR_RESET_DEVICE", addressed);
    nfa.add_transition(configured, "CR_DISABLE_SLOT", disabled);
    nfa
}

fn main() -> Result<(), Box<dyn Error>> {
    // A longer run than the paper's 39 events so that reset and disable are
    // exercised too; see `figures -- usb-slot` for the exact paper scale.
    let trace = usb_slot::generate(&usb_slot::UsbSlotConfig {
        length: 400,
        seed: 1,
    });
    let model = Learner::new(LearnerConfig::default()).learn(&trace)?;

    println!(
        "learned {} states / {} transitions from {} slot commands (datasheet: 4 states)",
        model.num_states(),
        model.num_transitions(),
        trace.len()
    );
    println!("\nlearned transitions:");
    for transition in model.rendered_automaton().transitions() {
        println!(
            "  {} --[{}]--> {}",
            transition.from, transition.label, transition.to
        );
    }

    // Check the learned model against the datasheet: every command sequence
    // the datasheet model accepts (up to length 4 from its initial state)
    // should be accepted by the learned model over the same labels, provided
    // the workload exercised it.
    let datasheet = datasheet_model();
    let learned = model.rendered_automaton();
    let mut checked = 0usize;
    let mut agreed = 0usize;
    for path in datasheet.label_paths_from_initial(4).paths {
        let labels: Vec<String> = path.iter().map(|l| format!("cmd' = {l}")).collect();
        checked += 1;
        if learned.accepts(&labels) {
            agreed += 1;
        }
    }
    println!("\ndatasheet agreement: {agreed}/{checked} command sequences of length 4 accepted");
    println!("(sequences the workload never exercised may be missing, as the paper notes)");
    Ok(())
}
