//! Streaming ingestion: learn a model from a CSV trace that is never
//! materialised in memory.
//!
//! The example emits an rtlinux scheduler trace straight to disk through the
//! streaming CSV writer, then learns from it twice — once via the classic
//! in-memory path and once via `Learner::learn_streamed`, which keeps only a
//! bounded chunk of observations resident — and shows that both produce the
//! same automaton. Run with:
//!
//! ```text
//! cargo run --release --example streaming -- [rows]
//! ```

use std::error::Error;
use std::io::BufReader;
use tracelearn::learn::{Learner, LearnerConfig};
use tracelearn::prelude::*;
use tracelearn::trace::{parse_csv, StreamingCsvReader};

fn main() -> Result<(), Box<dyn Error>> {
    let rows: usize = std::env::args()
        .nth(1)
        .map(|arg| arg.parse())
        .transpose()?
        .unwrap_or(200_000);
    let chunk = 16_384usize;

    // 1. Record the trace straight to disk: the simulator streams rows into
    //    the CSV writer, so this works for arbitrarily long traces.
    let dir = std::env::temp_dir().join("tracelearn-streaming-example");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("rtlinux-{rows}.csv"));
    Workload::LinuxKernel.write_csv(rows, 0xDAC2020, std::fs::File::create(&path)?)?;
    let bytes = std::fs::metadata(&path)?.len();
    println!(
        "wrote {rows} scheduler events ({bytes} bytes) to {}",
        path.display()
    );

    let learner = Learner::new(LearnerConfig::default().with_stream_chunk(chunk));

    // 2. Streamed learning: observations flow through in bounded chunks.
    let reader = StreamingCsvReader::new(BufReader::new(std::fs::File::open(&path)?))?;
    let streamed = learner.learn_streamed(reader)?;
    let stats = streamed.stats();
    println!(
        "\nstreamed:  {} states, {} transitions",
        streamed.num_states(),
        streamed.num_transitions()
    );
    println!(
        "  {} observations ingested, peak resident {} (chunk {chunk})",
        stats.trace_length, stats.peak_resident_observations
    );
    println!(
        "  {} predicate windows collapsed to {} unique solver windows",
        stats.predicate_count, stats.solver_windows
    );
    println!(
        "  synthesis {:?}, solver {:?}, total {:?}",
        stats.synthesis_time, stats.solver_time, stats.total_time
    );

    // 3. Reference: the classic in-memory path over the same file.
    let text = std::fs::read_to_string(&path)?;
    let in_memory = learner.learn(&parse_csv(&text)?)?;
    println!(
        "\nin-memory: {} states, {} transitions (resident {} observations)",
        in_memory.num_states(),
        in_memory.num_transitions(),
        in_memory.stats().peak_resident_observations
    );

    assert_eq!(streamed.num_states(), in_memory.num_states());
    assert_eq!(streamed.num_transitions(), in_memory.num_transitions());
    println!("\nboth paths agree ✓");

    println!("\nlearned scheduler model:\n{}", streamed.to_dot("rtlinux"));
    std::fs::remove_file(&path).ok();
    Ok(())
}
