//! Learns the anti-windup integrator model (paper Fig. 4) and uses it as a
//! runtime monitor: the learned automaton replays a fresh trace and flags any
//! step it cannot explain.
//!
//! ```text
//! cargo run --example integrator_model
//! ```

use std::error::Error;
use tracelearn::learn::PredicateExtractor;
use tracelearn::prelude::*;
use tracelearn::workloads::integrator;

fn main() -> Result<(), Box<dyn Error>> {
    let config = integrator::IntegratorConfig {
        length: 4096,
        saturation: 5,
        reset_period: 256,
        seed: 41,
    };
    let trace = integrator::generate(&config);

    // `ip` is a free input: declare it so no update predicate is synthesised
    // for it (the learner would also detect this automatically).
    let learner_config = LearnerConfig::default().with_input_variable("ip");
    let model = Learner::new(learner_config.clone()).learn(&trace)?;

    println!(
        "learned {} states / {} transitions from {} observations (paper: 3 states)",
        model.num_states(),
        model.num_transitions(),
        trace.len()
    );
    println!("\ntransition predicates:");
    for predicate in model.predicate_strings() {
        println!("  {predicate}");
    }

    // Use the model as a monitor on a fresh trace from the same system: every
    // unique window of the fresh predicate sequence should be explainable.
    let fresh = integrator::generate(&integrator::IntegratorConfig { seed: 99, ..config });
    let extractor = PredicateExtractor::new(
        &fresh,
        learner_config.window,
        learner_config.synthesis.clone(),
        &learner_config.input_variables,
    )?;
    let (fresh_sequence, fresh_alphabet) = extractor.extract();

    // Map fresh predicates onto the learned alphabet by their rendered form.
    let known: std::collections::HashMap<String, _> = model
        .alphabet()
        .iter()
        .map(|(id, p)| (p.render(fresh.signature(), fresh.symbols()), id))
        .collect();
    let mut unexplained = 0usize;
    for window in tracelearn::trace::unique_windows(&fresh_sequence, learner_config.window) {
        let mapped: Option<Vec<_>> = window
            .iter()
            .map(|id| {
                known
                    .get(&fresh_alphabet.render(*id, fresh.signature(), fresh.symbols()))
                    .copied()
            })
            .collect();
        match mapped {
            Some(labels) if model.automaton().accepts_from_any_state(&labels) => {}
            _ => unexplained += 1,
        }
    }
    println!(
        "\nmonitoring a fresh trace (seed 99): {} unexplained windows out of {}",
        unexplained,
        tracelearn::trace::unique_windows(&fresh_sequence, learner_config.window).len()
    );
    Ok(())
}
