//! Side-by-side comparison of the SAT/synthesis learner with the kTails and
//! EDSM state-merge baselines on the serial-port benchmark (the paper's
//! Fig. 2 and Table II in miniature).
//!
//! ```text
//! cargo run --example compare_state_merge
//! ```

use std::error::Error;
use std::time::Instant;
use tracelearn::prelude::*;
use tracelearn::statemerge::trace_to_events;
use tracelearn::workloads::serial;

fn main() -> Result<(), Box<dyn Error>> {
    let trace = serial::generate(&serial::SerialConfig {
        length: 1024,
        capacity: 16,
        seed: 17,
    });
    println!("serial I/O port trace: {} observations\n", trace.len());

    // Model learning (this paper).
    let start = Instant::now();
    let model = Learner::new(LearnerConfig::default()).learn(&trace)?;
    println!(
        "model learning:   {:>4} states  {:>5.2}s   labels such as {:?}",
        model.num_states(),
        start.elapsed().as_secs_f64(),
        model
            .predicate_strings()
            .iter()
            .find(|p| p.contains("write"))
            .cloned()
            .unwrap_or_default()
    );

    // kTails baseline.
    let events = trace_to_events(&trace);
    let start = Instant::now();
    let ktails = StateMergeLearner::new(StateMergeConfig {
        algorithm: MergeAlgorithm::KTails,
        k: 2,
    })
    .learn(std::slice::from_ref(&events));
    println!(
        "kTails (k = 2):   {:>4} states  {:>5.2}s   labels are raw observations such as {:?}",
        ktails.num_states(),
        start.elapsed().as_secs_f64(),
        events[1]
    );

    // EDSM baseline.
    let start = Instant::now();
    let edsm = StateMergeLearner::new(StateMergeConfig {
        algorithm: MergeAlgorithm::Edsm,
        k: 2,
    })
    .learn(std::slice::from_ref(&events));
    println!(
        "EDSM (blue-fringe): {:>2} states  {:>5.2}s",
        edsm.num_states(),
        start.elapsed().as_secs_f64()
    );

    println!(
        "\nThe state-merge models conform to the trace but are much larger and label\n\
         edges with concrete observations; the learned model is concise and labels\n\
         edges with synthesised predicates (the paper's Fig. 2 contrast)."
    );
    Ok(())
}
