//! Reproduces the paper's RT-Linux coverage observation (Fig. 6): the model
//! learned under a plain stress load misses scheduler corner cases that only
//! an extra kernel module exercises — the learned model doubles as a
//! functional-coverage report.
//!
//! ```text
//! cargo run --example rtlinux_coverage
//! ```

use std::error::Error;
use tracelearn::prelude::*;
use tracelearn::workloads::rtlinux;
use tracelearn::workloads::Prng;
use tracelearn_trace::RowEntry;

/// A reduced load that never exercises the "becomes runnable again without
/// suspending" corner case (the paper's initial pi_stress-only runs).
fn plain_load_trace(length: usize, seed: u64) -> Trace {
    let signature = Signature::builder().event("sched").build();
    let mut trace = Trace::new(signature);
    let mut rng = Prng::new(seed);
    // running -> sleepable -> suspend -> waking -> switch_in, with occasional
    // preemption; never sleepable -> runnable.
    let mut state = "suspended";
    while trace.len() < length {
        let (event, next) = match state {
            "suspended" => ("sched_waking", "woken"),
            "woken" => ("sched_switch_in", "running"),
            "running" => {
                if rng.chance(1, 3) {
                    ("sched_entry", "running")
                } else if rng.chance(2, 3) {
                    ("set_state_sleepable", "sleepable")
                } else {
                    ("set_need_resched", "resched")
                }
            }
            "sleepable" => ("sched_switch_suspend", "suspended"),
            "resched" => ("sched_switch_preempt", "preempted"),
            _ => ("sched_switch_in", "running"),
        };
        state = next;
        trace
            .push_named_row(vec![RowEntry::Event(event)])
            .expect("row matches signature");
    }
    trace
}

fn main() -> Result<(), Box<dyn Error>> {
    let learner = Learner::new(LearnerConfig::default());

    // 1. Model under the plain load.
    let plain = plain_load_trace(4096, 7);
    let plain_model = learner.learn(&plain)?;

    // 2. Model under the full load (with the corner-case module), as in Fig. 6.
    let full = rtlinux::generate(&rtlinux::RtLinuxConfig {
        length: 4096,
        seed: 7,
    });
    let full_model = learner.learn(&full)?;

    println!(
        "plain load:  {} states, {} transitions, alphabet of {} events",
        plain_model.num_states(),
        plain_model.num_transitions(),
        plain_model.alphabet().len()
    );
    println!(
        "full load:   {} states, {} transitions, alphabet of {} events",
        full_model.num_states(),
        full_model.num_transitions(),
        full_model.alphabet().len()
    );

    // Coverage report: which scheduler events appear only under the full load?
    let plain_events: std::collections::BTreeSet<String> =
        plain_model.predicate_strings().into_iter().collect();
    let full_events: std::collections::BTreeSet<String> =
        full_model.predicate_strings().into_iter().collect();
    println!("\nbehaviour exercised only by the corner-case module:");
    for event in full_events.difference(&plain_events) {
        println!("  {event}");
    }
    println!(
        "\nThis is the paper's coverage observation: comparing learned models reveals\n\
         which states/transitions of the hand-drawn kernel model a test load misses."
    );
    Ok(())
}
