//! Determinism suite for the parallel learning pipeline: `learn_many` must
//! return bit-identical models for any worker-thread count on all six paper
//! workloads, the portfolio must preserve state-count minimality, and
//! speculative workers must stop promptly when budgets hit.
//!
//! CI runs this suite in release mode alongside the debug `cargo test` run.

use std::time::{Duration, Instant};
use tracelearn::learn::{LearnStats, Learner, LearnerConfig, SolverStrategy};
use tracelearn::prelude::*;
use tracelearn::trace::TraceSet;

/// Three independently seeded runs of a workload, merged into one set.
fn workload_set(workload: Workload) -> TraceSet {
    let length = match workload {
        Workload::UsbSlot => 39,
        Workload::UsbAttach => 259,
        Workload::Counter => 300,
        Workload::SerialPort => 600,
        Workload::LinuxKernel => 1200,
        Workload::Integrator => 1500,
    };
    let traces: Vec<Trace> = [1u64, 2, 3]
        .iter()
        .map(|&seed| workload.generate_seeded(length, 0xDAC2020 + seed))
        .collect();
    TraceSet::from_traces(traces.iter()).expect("shards share a signature")
}

fn config_for(workload: Workload) -> LearnerConfig {
    match workload {
        Workload::Integrator => LearnerConfig::default().with_input_variable("ip"),
        _ => LearnerConfig::default(),
    }
}

/// Zeroes the fields legitimately allowed to differ across thread counts:
/// the thread/speculation counters and the wall-clock phase times.
fn scrubbed(stats: LearnStats) -> LearnStats {
    LearnStats {
        threads_used: 0,
        speculative_solves: 0,
        cancelled_solves: 0,
        ingest_time: Duration::ZERO,
        synthesis_time: Duration::ZERO,
        segmentation_time: Duration::ZERO,
        solver_time: Duration::ZERO,
        total_time: Duration::ZERO,
        ..stats
    }
}

#[test]
fn learn_many_is_bit_identical_across_thread_counts() {
    for workload in Workload::all() {
        let set = workload_set(workload);
        let config = config_for(workload);
        let reference = Learner::new(config.clone().with_num_threads(1))
            .learn_many(&set)
            .expect("sequential run learns");
        for threads in [2usize, 8] {
            let model = Learner::new(config.clone().with_num_threads(threads))
                .learn_many(&set)
                .expect("parallel run learns");
            let name = workload.name();
            assert_eq!(
                model.automaton(),
                reference.automaton(),
                "{name}: automaton differs at {threads} threads"
            );
            assert_eq!(
                model.predicate_sequences(),
                reference.predicate_sequences(),
                "{name}: predicate sequences differ at {threads} threads"
            );
            assert_eq!(
                model.alphabet(),
                reference.alphabet(),
                "{name}: alphabet differs at {threads} threads"
            );
            assert_eq!(
                scrubbed(model.stats()),
                scrubbed(reference.stats()),
                "{name}: stats (modulo thread counters) differ at {threads} threads"
            );
            assert_eq!(model.stats().threads_used, threads);
        }
    }
}

#[test]
fn portfolio_state_count_is_still_minimal() {
    // The portfolio accepts a speculated count only after every smaller
    // count was refuted with a matching entry state, so its answer is the
    // minimum satisfiable count: starting the *sequential* search one state
    // lower must converge on the same count.
    for workload in [Workload::Counter, Workload::LinuxKernel] {
        let set = workload_set(workload);
        let config = config_for(workload);
        let parallel = Learner::new(config.clone().with_num_threads(8))
            .learn_many(&set)
            .expect("portfolio run learns");
        let sequential = Learner::new(config.clone().with_num_threads(1))
            .learn_many(&set)
            .expect("sequential run learns");
        assert_eq!(parallel.num_states(), sequential.num_states());
        // No count below the answer is satisfiable-and-compliant: a search
        // capped just under the answer must fail.
        if parallel.num_states() > config.initial_states {
            let mut capped = config.clone().with_num_threads(8);
            capped.max_states = parallel.num_states() - 1;
            assert!(
                Learner::new(capped).learn_many(&set).is_err(),
                "{}: a smaller automaton should not exist",
                workload.name()
            );
        }
    }
}

#[test]
fn batched_assumptions_agrees_on_the_minimal_state_count() {
    for workload in [Workload::Counter, Workload::UsbAttach] {
        let set = workload_set(workload);
        let config = config_for(workload);
        let per_count = Learner::new(config.clone())
            .learn_many(&set)
            .expect("per-count run learns");
        let batched = Learner::new(
            config
                .clone()
                .with_solver_strategy(SolverStrategy::BatchedAssumptions),
        )
        .learn_many(&set)
        .expect("batched run learns");
        assert_eq!(batched.num_states(), per_count.num_states());
        assert_eq!(batched.stats().solvers_constructed, 1);
    }
}

#[test]
fn speculative_workers_stop_promptly_when_budgets_hit() {
    // A conflict budget too small to decide anything: the sequential and
    // portfolio searches must report the identical budget error, and the
    // cancellation flag must stop the in-flight speculation promptly rather
    // than letting the doomed waves run to completion.
    let set = workload_set(Workload::LinuxKernel);
    let mut tiny = config_for(Workload::LinuxKernel);
    tiny.max_conflicts = Some(1);
    let sequential = Learner::new(tiny.clone().with_num_threads(1)).learn_many(&set);
    let start = Instant::now();
    let parallel = Learner::new(tiny.with_num_threads(8)).learn_many(&set);
    assert!(
        start.elapsed() < Duration::from_secs(120),
        "speculative workers were not cancelled promptly"
    );
    match (sequential, parallel) {
        (
            Err(LearnError::BudgetExhausted { resource: a }),
            Err(LearnError::BudgetExhausted { resource: b }),
        ) => assert_eq!(a, b, "both searches must fail at the same point"),
        other => panic!("expected matching budget errors, got {other:?}"),
    }
}

#[test]
fn time_budget_errors_match_across_thread_counts() {
    let set = workload_set(Workload::Counter);
    let config = config_for(Workload::Counter).with_time_budget(Duration::from_nanos(1));
    let sequential = Learner::new(config.clone().with_num_threads(1)).learn_many(&set);
    let parallel = Learner::new(config.with_num_threads(4)).learn_many(&set);
    match (sequential, parallel) {
        (
            Err(LearnError::BudgetExhausted { resource: a }),
            Err(LearnError::BudgetExhausted { resource: b }),
        ) => assert_eq!(a, b),
        other => panic!("expected matching budget errors, got {other:?}"),
    }
}
