//! Dynamic evidence for the `hot-path-alloc` lint rule: after calibration
//! and window warmup, `MonitorSession::push_event` must not touch the heap
//! at all. A counting `#[global_allocator]` wraps the system allocator for
//! this test binary only; the binary holds exactly one test so no parallel
//! test can pollute the counters.
//!
//! The strict zero assertion runs in release mode (the CI release suite);
//! debug builds still execute the test but only report the count, since
//! the point is the shipping configuration.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use tracelearn::learn::{Learner, LearnerConfig, Monitor};
use tracelearn::workloads::Workload;

/// Counts allocator entries while `COUNTING` is set.
struct CountingAllocator;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static REALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            REALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn push_event_steady_state_does_not_allocate() {
    // Learn a model and generate a fresh stream, all before counting
    // starts: only the steady-state monitoring loop is under measurement.
    let workload = Workload::Counter;
    let train = workload.generate(2_000);
    let config = LearnerConfig::default();
    let model = Learner::new(config.clone())
        .learn(&train)
        .expect("counter is learnable");
    let monitor = Monitor::new(&model, config);

    let fresh = workload.generate(2_000);
    let observations: Vec<_> = fresh.observations().to_vec();
    let (warmup, steady) = observations.split_at(1_500);
    assert!(!steady.is_empty());

    let mut session = monitor
        .session_with_calibration(fresh.signature(), 64)
        .expect("window fits");
    for observation in warmup {
        session
            .push_event(observation, fresh.symbols())
            .expect("warmup push succeeds");
    }

    // The counter workload cycles, so 1500 warmup events have interned
    // every window the steady tail revisits; from here on, each event is a
    // ring-buffer rotation plus hash lookups over existing storage.
    ALLOCATIONS.store(0, Ordering::SeqCst);
    REALLOCATIONS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    let mut verdicts = 0usize;
    for observation in steady {
        let verdict = session
            .push_event(observation, fresh.symbols())
            .expect("steady push succeeds");
        verdicts += verdict.windows_closed;
    }
    COUNTING.store(false, Ordering::SeqCst);
    let allocations = ALLOCATIONS.load(Ordering::SeqCst);
    let reallocations = REALLOCATIONS.load(Ordering::SeqCst);

    assert!(verdicts > 0, "steady phase closed no windows");
    // Release is the configuration the no-alloc promise is made for; the
    // debug allocator behaviour is identical today, but keeping the hard
    // gate on the shipping profile makes the test robust to debug-only
    // instrumentation in std.
    if cfg!(debug_assertions) {
        eprintln!(
            "debug build: {allocations} allocations, {reallocations} reallocations \
             over {} steady events",
            steady.len()
        );
    } else {
        assert_eq!(
            (allocations, reallocations),
            (0, 0),
            "steady-state push_event touched the heap over {} events",
            steady.len()
        );
    }

    let report = session.finish(fresh.symbols()).expect("finish succeeds");
    assert!(report.deviations.is_empty(), "fresh stream deviated");
}
