//! Integration tests comparing the learner with the state-merge baselines —
//! the qualitative claims behind Table II and Fig. 2.

use tracelearn::prelude::*;
use tracelearn::statemerge::trace_to_events;

#[test]
fn learner_is_much_more_concise_than_ktails_on_numeric_traces() {
    // The paper's counter row: 377 states for state merge vs 4 for learning.
    let trace = Workload::Counter.generate(447);
    let learned = Learner::new(LearnerConfig::default())
        .learn(&trace)
        .unwrap();
    let merged = StateMergeLearner::new(StateMergeConfig {
        algorithm: MergeAlgorithm::KTails,
        k: 2,
    })
    .learn_from_trace(&trace);
    assert!(
        merged.num_states() >= 10 * learned.num_states(),
        "state merge: {} states, learner: {} states",
        merged.num_states(),
        learned.num_states()
    );
}

#[test]
fn both_approaches_conform_to_the_trace_they_saw() {
    let trace = Workload::UsbSlot.generate(120);
    let events = trace_to_events(&trace);

    let merged = StateMergeLearner::default().learn(std::slice::from_ref(&events));
    assert!(merged.accepts(&events));

    let learned = Learner::new(LearnerConfig::default())
        .learn(&trace)
        .unwrap();
    // The learned model embeds every unique predicate window.
    for window in tracelearn::trace::unique_windows(learned.predicate_sequence(), 3) {
        assert!(learned.automaton().accepts_from_any_state(&window));
    }
}

#[test]
fn edsm_and_ktails_produce_conforming_but_larger_models_on_event_traces() {
    let trace = Workload::UsbAttach.generate(259);
    let events = trace_to_events(&trace);
    let learned = Learner::new(LearnerConfig::default())
        .learn(&trace)
        .unwrap();
    for algorithm in [MergeAlgorithm::KTails, MergeAlgorithm::Edsm] {
        let merged = StateMergeLearner::new(StateMergeConfig { algorithm, k: 2 })
            .learn(std::slice::from_ref(&events));
        assert!(
            merged.accepts(&events),
            "{algorithm:?} must accept its training trace"
        );
    }
    // kTails (the paper's Table II baseline) produces a much larger model
    // than the learner; blue-fringe EDSM with only positive data can instead
    // over-generalise, which is the known limitation discussed in §VIII.
    let ktails = StateMergeLearner::new(StateMergeConfig {
        algorithm: MergeAlgorithm::KTails,
        k: 2,
    })
    .learn(std::slice::from_ref(&events));
    assert!(
        ktails.num_states() > learned.num_states(),
        "kTails: {} vs learner {}",
        ktails.num_states(),
        learned.num_states()
    );
}

#[test]
fn state_merge_labels_are_raw_observations_while_learner_labels_are_predicates() {
    let trace = Workload::SerialPort.generate(300);
    let merged = StateMergeLearner::default().learn_from_trace(&trace);
    // Raw observation labels look like "op=read, x=3".
    assert!(merged
        .labels()
        .iter()
        .any(|label| label.contains("op=") && label.contains("x=")));

    let learned = Learner::new(LearnerConfig::default())
        .learn(&trace)
        .unwrap();
    // Learner labels are symbolic predicates over X ∪ X'.
    assert!(learned
        .predicate_strings()
        .iter()
        .any(|label| label.contains("x' = (x + 1)") || label.contains("x' = (x - 1)")));
}
