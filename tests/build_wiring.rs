//! Smoke tests for the workspace build wiring: the umbrella crate's
//! re-exports must resolve to the member crates, and a minimal end-to-end
//! learn must work through the public API alone.

use tracelearn::prelude::*;

/// Every name exported through `tracelearn::prelude` resolves and refers to
/// usable items. Compilation of these bindings is most of the test; the
/// assertions pin down a few invariants cheap enough for a smoke test.
#[test]
fn prelude_reexports_resolve() {
    // trace
    let signature = Signature::builder().int("x").build();
    let trace = Trace::new(signature);
    assert_eq!(trace.len(), 0);
    let _value: Value = Value::Int(42);

    // automaton
    let nfa: Nfa<u8> = Nfa::new(1, StateId::new(0));
    assert_eq!(nfa.num_states(), 1);

    // learn (tracelearn-core)
    let _config: LearnerConfig = LearnerConfig::default();
    let _error: Option<LearnError> = None;
    let _model: Option<LearnedModel> = None;

    // statemerge
    let _merge_config: StateMergeConfig = StateMergeConfig::default();
    let _algorithm: Option<MergeAlgorithm> = None;

    // synth
    let _synth_config: SynthesisConfig = SynthesisConfig::default();

    // workloads
    assert!(!Workload::all().is_empty());
}

/// The module-level re-exports (`tracelearn::trace`, `::learn`, …) expose
/// the member crates' items under their documented paths.
#[test]
fn module_reexports_resolve() {
    let ws = tracelearn::trace::windows_of(&[1, 2, 3], 2);
    assert_eq!(ws.len(), 2);

    let trace =
        tracelearn::workloads::counter::generate(&tracelearn::workloads::counter::CounterConfig {
            threshold: 4,
            length: 20,
        });
    let csv = tracelearn::trace::to_csv(&trace).expect("serialisable trace");
    let parsed = tracelearn::trace::parse_csv(&csv).expect("round-trip through CSV");
    assert_eq!(parsed.len(), trace.len());
}

/// A minimal end-to-end learn on the counter workload completes and stays
/// within a small state bound — the umbrella quickstart, as a hard test.
#[test]
fn end_to_end_learn_on_counter_is_concise() {
    let trace =
        tracelearn::workloads::counter::generate(&tracelearn::workloads::counter::CounterConfig {
            threshold: 8,
            length: 100,
        });
    let model = Learner::new(LearnerConfig::default())
        .learn(&trace)
        .expect("counter workload is learnable");
    assert!(
        model.num_states() <= 4,
        "counter model must stay concise, got {} states",
        model.num_states()
    );
    assert!(!model.to_dot("counter").is_empty());
}
