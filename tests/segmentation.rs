//! Integration tests for the segmentation mechanism (paper §V): segmented
//! and full-trace runs agree on the learned model, and segmentation is what
//! keeps the encoding small on long traces.

use std::time::Duration;
use tracelearn::prelude::*;

fn configs(segmented: bool) -> LearnerConfig {
    LearnerConfig {
        segmented,
        ..LearnerConfig::default()
    }
}

#[test]
fn segmented_and_full_trace_learn_equivalent_models() {
    for workload in [Workload::Counter, Workload::UsbSlot, Workload::SerialPort] {
        let trace = workload.generate(200);
        let segmented = Learner::new(configs(true)).learn(&trace).unwrap();
        let full = Learner::new(configs(false)).learn(&trace).unwrap();
        assert_eq!(
            segmented.num_states(),
            full.num_states(),
            "{}: state counts must agree",
            workload.name()
        );
        assert_eq!(
            segmented.alphabet().len(),
            full.alphabet().len(),
            "{}: alphabets must agree",
            workload.name()
        );
    }
}

#[test]
fn segmentation_shrinks_the_solver_input_dramatically() {
    let trace = Workload::Integrator.generate(4096);
    let config = configs(true).with_input_variable("ip");
    let model = Learner::new(config).learn(&trace).unwrap();
    let stats = model.stats();
    // Thousands of windows collapse to a few dozen unique ones.
    assert!(stats.predicate_count > 3000);
    assert!(
        stats.solver_windows * 10 < stats.predicate_count,
        "only {} of {} windows should remain after deduplication",
        stats.solver_windows,
        stats.predicate_count
    );
}

#[test]
fn full_trace_mode_hits_budgets_on_long_traces() {
    // With a tiny clause budget the non-segmented encoding of a long trace is
    // rejected up front — this is the "timeout" behaviour of Table I.
    let trace = Workload::LinuxKernel.generate(4096);
    let mut config = configs(false);
    config.max_clauses = 100_000;
    match Learner::new(config).learn(&trace) {
        Err(LearnError::BudgetExhausted { .. }) => {}
        other => panic!("expected budget exhaustion, got {other:?}"),
    }
    // The segmented run under the same budget succeeds.
    let mut config = configs(true);
    config.max_clauses = 100_000;
    let model = Learner::new(config).learn(&trace).unwrap();
    assert!(model.num_states() <= 10);
}

#[test]
fn wall_clock_budget_is_respected() {
    let trace = Workload::LinuxKernel.generate(2048);
    let config = configs(false).with_time_budget(Duration::from_millis(1));
    match Learner::new(config).learn(&trace) {
        Err(LearnError::BudgetExhausted { resource }) => {
            assert!(resource.contains("wall-clock") || resource.contains("budget"));
        }
        other => panic!("expected budget exhaustion, got {other:?}"),
    }
}

#[test]
fn window_length_one_is_rejected_and_longer_windows_work() {
    // Long enough to oscillate around the threshold several times.
    let trace = Workload::Counter.generate(600);
    let mut config = configs(true);
    config.window = 1;
    assert!(matches!(
        Learner::new(config).learn(&trace),
        Err(LearnError::WindowTooSmall { .. })
    ));

    // w = 4 still learns a concise counter model (longer windows see more
    // context and may introduce a few extra turning-point labels).
    let mut config = configs(true);
    config.window = 4;
    let model = Learner::new(config).learn(&trace).unwrap();
    assert!(
        (3..=8).contains(&model.num_states()),
        "unexpected size {}",
        model.num_states()
    );
}
