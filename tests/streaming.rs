//! Integration tests for the streaming ingestion + sharded segmentation
//! pipeline: streamed learning agrees with the in-memory path, multi-trace
//! learning never fabricates windows across trace boundaries, and the
//! resident observation count stays bounded by the chunk size plus the
//! calibration reservoir.

use tracelearn::learn::Learner;
use tracelearn::prelude::*;
use tracelearn::trace::{
    parse_csv, to_csv, unique_windows, StreamingCsvReader, TraceSet, WindowCollector,
};

/// Streamed ingestion of a workload CSV produces exactly the windows of the
/// in-memory `unique_windows`, chunk size notwithstanding.
#[test]
fn streamed_observation_windows_equal_in_memory_unique_windows() {
    for workload in [Workload::LinuxKernel, Workload::SerialPort] {
        let trace = workload.generate(3000);
        let csv = to_csv(&trace).unwrap();
        for (w, chunk) in [(3usize, 64usize), (2, 7), (4, 1000)] {
            let mut reader = StreamingCsvReader::new(csv.as_bytes()).unwrap();
            let mut collector = WindowCollector::new(w);
            let mut scratch = Vec::new();
            loop {
                if reader.read_chunk(chunk, &mut scratch).unwrap() == 0 {
                    break;
                }
                collector.extend(scratch.drain(..));
            }
            // Reference: batch unique windows over the materialised trace.
            let reference = unique_windows(trace.observations(), w);
            assert_eq!(
                collector.into_unique(),
                reference,
                "{} w={w} chunk={chunk}",
                workload.name()
            );
        }
    }
}

#[test]
fn learn_streamed_matches_learn_on_event_workloads() {
    // Event-only signatures: the streamed path is exactly equivalent to the
    // in-memory path regardless of trace length vs calibration size.
    for workload in [Workload::LinuxKernel, Workload::UsbAttach] {
        let trace = workload.generate(20_000);
        let csv = to_csv(&trace).unwrap();
        let learner = Learner::new(LearnerConfig::default().with_stream_chunk(4096));
        let in_memory = learner.learn(&trace).unwrap();
        let reader = StreamingCsvReader::new(csv.as_bytes()).unwrap();
        let streamed = learner.learn_streamed(reader).unwrap();
        assert_eq!(
            streamed.num_states(),
            in_memory.num_states(),
            "{}",
            workload.name()
        );
        assert_eq!(
            streamed.num_transitions(),
            in_memory.num_transitions(),
            "{}",
            workload.name()
        );
        assert_eq!(
            streamed.predicate_sequence(),
            in_memory.predicate_sequence(),
            "{}",
            workload.name()
        );
        assert_eq!(
            streamed.stats().solver_windows,
            in_memory.stats().solver_windows
        );
    }
}

/// The configuration-derived residency bound of `learn_streamed`: the
/// rolling chunk buffer (plus window carry) and the calibration reservoir
/// (plus block-rounding slack).
fn residency_bound(learner: &Learner) -> usize {
    let config = learner.config();
    let chunk = config.stream_chunk.max(config.window);
    chunk + config.window + config.calibration_sample.max(chunk).max(4096) + 256
}

#[test]
fn streamed_peak_residency_is_bounded_by_chunk_plus_calibration() {
    let trace = Workload::LinuxKernel.generate(60_000);
    let csv = to_csv(&trace).unwrap();
    let chunk = 8192;
    let learner = Learner::new(LearnerConfig::default().with_stream_chunk(chunk));
    let reader = StreamingCsvReader::new(csv.as_bytes()).unwrap();
    let model = learner.learn_streamed(reader).unwrap();
    let stats = model.stats();
    assert_eq!(stats.trace_length, 60_000);
    assert!(
        stats.peak_resident_observations <= residency_bound(&learner),
        "peak residency {} exceeds the configured bound {}",
        stats.peak_resident_observations,
        residency_bound(&learner)
    );
    // And a small calibration sample keeps the total close to the chunk.
    let learner = Learner::new(
        LearnerConfig::default()
            .with_stream_chunk(chunk)
            .with_calibration_sample(1),
    );
    let reader = StreamingCsvReader::new(csv.as_bytes()).unwrap();
    let stats = learner.learn_streamed(reader).unwrap().stats();
    assert!(
        stats.peak_resident_observations <= residency_bound(&learner),
        "peak residency {} exceeds the configured bound {}",
        stats.peak_resident_observations,
        residency_bound(&learner)
    );
    assert!(residency_bound(&learner) <= 2 * chunk + 4096 + 512);
}

#[test]
fn learn_many_agrees_with_single_trace_learning_on_split_runs() {
    // Two independently generated runs of the same system: the merged model
    // must embed every window of both, and the learner must not invent a
    // phantom window bridging run 1's tail and run 2's head.
    let run1 = Workload::LinuxKernel.generate_seeded(2000, 11);
    let run2 = Workload::LinuxKernel.generate_seeded(2000, 22);
    let set = TraceSet::from_traces([&run1, &run2]).unwrap();
    let learner = Learner::new(LearnerConfig::default());
    let merged = learner.learn_many(&set).unwrap();
    let stats = merged.stats();
    assert_eq!(stats.shards, 2);
    assert_eq!(stats.trace_length, 4000);
    assert_eq!(stats.shard_windows.len(), 2);
    assert_eq!(
        stats.shard_windows.iter().sum::<usize>(),
        stats.solver_windows
    );

    // Window sets: merged solver windows == union of per-run windows; in
    // particular no window spans the run boundary.
    let sequences = merged.predicate_sequences();
    assert_eq!(sequences.len(), 2);
    let mut union = unique_windows(&sequences[0], 3);
    for w in unique_windows(&sequences[1], 3) {
        if !union.contains(&w) {
            union.push(w);
        }
    }
    assert_eq!(stats.solver_windows, union.len());
    for window in &union {
        assert!(merged.automaton().accepts_from_any_state(window));
    }

    // Each run alone is learnable, and the merged model is no larger than
    // necessary: it still matches the per-run state count for this system.
    let single = learner.learn(&run1).unwrap();
    assert_eq!(merged.num_states(), single.num_states());
}

#[test]
fn learn_many_differs_from_learning_the_concatenation() {
    // Concatenating two traces fabricates windows at the seam. Construct a
    // pair where the seam window is genuinely new: run 1 ends in `a`, run 2
    // starts with `b`, and `a b` never occurs inside either run.
    let sig = Signature::builder().event("op").build();
    let mk = |events: &[&str]| {
        let mut t = Trace::new(sig.clone());
        for e in events {
            t.push_named_row(vec![tracelearn::trace::RowEntry::Event(e)])
                .unwrap();
        }
        t
    };
    let run1 = mk(&["a", "c", "a", "c", "a"]);
    let run2 = mk(&["b", "c", "b", "c", "b"]);
    let concatenated = mk(&["a", "c", "a", "c", "a", "b", "c", "b", "c", "b"]);

    let learner = Learner::new(LearnerConfig::default());
    let set = TraceSet::from_traces([&run1, &run2]).unwrap();
    let sharded = learner.learn_many(&set).unwrap();
    let seamed = learner.learn(&concatenated).unwrap();
    // The sharded run sees strictly fewer windows than the concatenation,
    // which manufactures `… a b …` windows at the seam.
    assert!(
        sharded.stats().solver_windows < seamed.stats().solver_windows,
        "sharded {} vs seamed {}",
        sharded.stats().solver_windows,
        seamed.stats().solver_windows
    );
}

/// The acceptance-scale run: a multi-million-row rtlinux trace is emitted
/// through the streaming CSV writer, then learned both ways; state count and
/// transition count must agree and residency must stay bounded. Ignored in
/// debug builds (it is CPU-bound there); CI runs it in release.
#[cfg_attr(
    debug_assertions,
    ignore = "run in release builds (CI: cargo test --release)"
)]
#[test]
fn two_million_row_stream_learns_the_in_memory_model() {
    use std::io::BufReader;

    let rows = 2_000_000usize;
    let dir = std::env::temp_dir().join("tracelearn-streaming-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("rtlinux-{rows}.csv"));
    let file = std::fs::File::create(&path).unwrap();
    Workload::LinuxKernel
        .write_csv(rows, 0xDAC2020, file)
        .unwrap();

    let chunk = 65_536;
    let learner = Learner::new(LearnerConfig::default().with_stream_chunk(chunk));

    // Streamed: bounded residency.
    let reader =
        StreamingCsvReader::new(BufReader::new(std::fs::File::open(&path).unwrap())).unwrap();
    let streamed = learner.learn_streamed(reader).unwrap();
    let stats = streamed.stats();
    assert_eq!(stats.trace_length, rows);
    assert!(stats.peak_resident_observations <= residency_bound(&learner));
    // Far below the trace itself: the 2M rows never sit in memory at once.
    assert!(stats.peak_resident_observations <= rows / 10);

    // In-memory reference over the same bytes.
    let text = std::fs::read_to_string(&path).unwrap();
    let in_memory = learner.learn(&parse_csv(&text).unwrap()).unwrap();

    assert_eq!(streamed.num_states(), in_memory.num_states());
    assert_eq!(streamed.num_transitions(), in_memory.num_transitions());
    assert_eq!(
        streamed.stats().solver_windows,
        in_memory.stats().solver_windows
    );
    std::fs::remove_file(&path).ok();
}
