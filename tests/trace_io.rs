//! Integration tests for the trace interchange path: a trace recorded by one
//! tool (or exported to text) can be re-parsed and learned from without any
//! change to the result, including traces with adversarial event names.

use tracelearn::prelude::*;
use tracelearn::trace::{parse_csv, to_csv, RowEntry, StreamingCsvReader};

#[test]
fn csv_round_trip_preserves_the_learned_model() {
    let trace = Workload::SerialPort.generate(400);
    let text = to_csv(&trace).expect("serialisable trace");
    let reparsed = parse_csv(&text).expect("round trip parses");
    assert_eq!(reparsed.len(), trace.len());

    let learner = Learner::new(LearnerConfig::default());
    let original = learner.learn(&trace).unwrap();
    let recovered = learner.learn(&reparsed).unwrap();
    assert_eq!(original.num_states(), recovered.num_states());
    assert_eq!(
        original.predicate_strings().len(),
        recovered.predicate_strings().len()
    );
}

#[test]
fn csv_round_trip_preserves_event_names_and_values() {
    let trace = Workload::LinuxKernel.generate(500);
    let text = to_csv(&trace).expect("serialisable trace");
    let reparsed = parse_csv(&text).expect("round trip parses");
    assert_eq!(
        trace.event_sequence("sched").unwrap(),
        reparsed.event_sequence("sched").unwrap()
    );
}

#[test]
fn csv_round_trip_is_identity_for_adversarial_event_names() {
    // Event names containing every CSV metacharacter: commas, quotes,
    // leading/trailing whitespace, newlines — and combinations.
    let signature = Signature::builder().event("op").int("x").build();
    let mut trace = Trace::new(signature);
    let names = [
        "plain",
        "a,b",
        "say \"hi\"",
        " leading",
        "trailing\t",
        "two\nlines",
        "",
        ",\",\n\"",
    ];
    for (i, name) in names.iter().enumerate() {
        trace
            .push_named_row(vec![
                RowEntry::Event(name),
                RowEntry::Value(Value::Int(i as i64)),
            ])
            .unwrap();
    }
    let text = to_csv(&trace).expect("serialisable trace");
    let back = parse_csv(&text).expect("round trip parses");
    assert_eq!(back, trace);
    // The streaming reader shares the tokenizer and must agree exactly.
    let streamed = StreamingCsvReader::new(text.as_bytes())
        .unwrap()
        .read_trace()
        .unwrap();
    assert_eq!(streamed, trace);
}

#[test]
fn empty_header_fields_are_rejected_loudly() {
    let err = parse_csv("x:int,,y:int\n1,2\n").unwrap_err();
    assert!(
        err.to_string().contains("empty header field"),
        "misleading error: {err}"
    );
}

#[test]
fn hand_written_csv_can_be_learned_from() {
    let mut text = String::from("op:event,x:int\n");
    let mut level = 0i64;
    for i in 0..240 {
        let op = if i % 6 == 5 {
            level = 0;
            "reset"
        } else if i % 2 == 0 {
            level += 1;
            "write"
        } else {
            level -= 1;
            "read"
        };
        text.push_str(&format!("{op},{level}\n"));
    }
    let trace = parse_csv(&text).expect("valid text trace");
    let model = Learner::new(LearnerConfig::default())
        .learn(&trace)
        .unwrap();
    assert!(model.num_states() <= 8);
    assert!(model
        .predicate_strings()
        .iter()
        .any(|p| p.contains("write")));
}

#[test]
fn dot_export_is_well_formed_for_every_benchmark() {
    for workload in Workload::all() {
        let trace = workload.generate(200);
        let mut config = LearnerConfig::default();
        if workload == Workload::Integrator {
            config = config.with_input_variable("ip");
        }
        let model = Learner::new(config).learn(&trace).unwrap();
        let dot = model.to_dot("model");
        assert!(dot.starts_with("digraph model {"), "{}", workload.name());
        assert!(dot.trim_end().ends_with('}'), "{}", workload.name());
        // One edge line per transition.
        let edges = dot.matches("->").count();
        assert!(edges >= model.num_transitions(), "{}", workload.name());
    }
}
