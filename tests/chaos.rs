//! Chaos suite: deterministic fault injection against the serving pipeline.
//!
//! Every test arms a pinned [`FaultPlan`] — same seed, same occurrence
//! numbers — so each "random" failure is a *named, reproducible* event, and
//! the assertions can be exact: a worker crash must cost an `info` line and
//! nothing else, so the verdict/summary sequence of every surviving stream
//! is compared byte-for-byte against a fault-free run of the same input.
//!
//! The plan registry is process-global, so tests serialize on one mutex and
//! each installs its own plan (which resets all occurrence counters).
//!
//! [`FaultPlan`]: tracelearn_faults::FaultPlan

#![cfg(feature = "fault-injection")]

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use tracelearn_faults::{disarm, install, FaultPlan};
use tracelearn_serve::{
    serve_commands, serve_csv_stream, ModelSpec, Registry, ServeOptions, ServeSummary,
};
use tracelearn_workloads::Workload;

/// The armed fault plan is process-global state: serialize every test.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Arms `spec` for the duration of one closure, guaranteeing disarm on exit
/// even when an assertion inside panics (the next test re-serializes anyway,
/// but a leftover plan would corrupt *its* occurrence counts).
fn with_plan<T>(spec: &str, run: impl FnOnce() -> T) -> T {
    struct Disarm;
    impl Drop for Disarm {
        fn drop(&mut self) {
            disarm();
        }
    }
    let _guard = Disarm;
    install(FaultPlan::parse(spec).expect("test plan must parse"));
    run()
}

fn counter_registry() -> Registry {
    let specs = vec![ModelSpec::parse("counter=workload:counter:600").unwrap()];
    Registry::load(&specs).unwrap()
}

fn counter_csv(length: usize) -> String {
    let mut csv = Vec::new();
    Workload::Counter
        .write_csv(length, 0xDAC2020, &mut csv)
        .unwrap();
    String::from_utf8(csv).unwrap()
}

fn options() -> ServeOptions {
    ServeOptions {
        workers: 1,
        calibration_events: 64,
        stall_timeout: Duration::from_millis(100),
        ..ServeOptions::default()
    }
}

/// Builds a two-stream multiplexed protocol script over the counter trace.
fn two_stream_input() -> String {
    let csv = counter_csv(300);
    let mut lines = csv.lines();
    let header = lines.next().unwrap().to_string();
    let records: Vec<String> = lines.map(str::to_string).collect();
    let mut input = String::new();
    input.push_str("open a counter\nopen b counter\n");
    input.push_str(&format!("data a {header}\ndata b {header}\n"));
    for record in &records {
        input.push_str(&format!("data a {record}\ndata b {record}\n"));
    }
    input.push_str("close a\nclose b\n");
    input
}

fn run_commands(
    monitors: &BTreeMap<String, tracelearn_core::Monitor<'_>>,
    input: &str,
    options: &ServeOptions,
) -> (ServeSummary, String) {
    let mut output = Vec::new();
    let summary = serve_commands(monitors, input.as_bytes(), &mut output, options)
        .expect("serving must not return an I/O error");
    (summary, String::from_utf8(output).expect("output is UTF-8"))
}

/// Strips the wall-clock latency fields from a summary line: they are the
/// one part of the output that legitimately differs between two runs of the
/// same plan. Everything before them — events, windows, deviations,
/// conformance — is part of the byte-identity contract.
fn strip_latency(line: &str) -> String {
    match line.split_once(" p50_us=") {
        Some((semantic, _)) if line.starts_with("summary ") => semantic.to_string(),
        _ => line.to_string(),
    }
}

/// The verdict/summary/error lines of one stream, in emission order —
/// the byte-identity unit of the chaos contract (`info` lines excluded:
/// supervision noise is allowed to differ, stream content is not).
fn stream_lines(output: &str, stream: &str) -> Vec<String> {
    output
        .lines()
        .filter(|line| {
            let mut parts = line.split_whitespace();
            let kind = parts.next().unwrap_or("");
            parts.next() == Some(stream) && matches!(kind, "verdict" | "summary" | "error")
        })
        .map(strip_latency)
        .collect()
}

#[test]
fn worker_panic_is_invisible_in_stream_output() {
    let _lock = serial();
    let registry = counter_registry();
    let monitors = registry.monitors();
    let input = two_stream_input();
    let options = options();

    disarm();
    let (baseline_summary, baseline) = run_commands(&monitors, &input, &options);
    assert_eq!(baseline_summary.failed, 0);
    assert_eq!(baseline_summary.restarted, 0);

    // The 100th data task panics its worker mid-run.
    let (summary, output) = with_plan("seed:7,spec:worker.panic@100", || {
        run_commands(&monitors, &input, &options)
    });

    assert!(summary.restarted >= 1, "no restart recorded: {summary:?}");
    assert!(summary.replayed >= 1, "no replay recorded: {summary:?}");
    assert_eq!(summary.failed, 0, "a surviving stream failed:\n{output}");
    assert_eq!(summary.streams, baseline_summary.streams);
    assert_eq!(summary.events, baseline_summary.events);
    assert_eq!(summary.deviations, baseline_summary.deviations);
    assert!(
        output.contains("info - worker 0 restarted"),
        "no supervision info line in:\n{output}"
    );
    assert!(
        output.contains("records after worker loss"),
        "no replay info line in:\n{output}"
    );
    for stream in ["a", "b"] {
        assert_eq!(
            stream_lines(&output, stream),
            stream_lines(&baseline, stream),
            "stream {stream} diverged from the fault-free run"
        );
    }
}

#[test]
fn worker_stall_is_condemned_and_replayed() {
    let _lock = serial();
    let registry = counter_registry();
    let monitors = registry.monitors();
    let input = two_stream_input();
    let options = options();

    disarm();
    let (_, baseline) = run_commands(&monitors, &input, &options);

    // The 150th data task wedges its worker until the watchdog condemns it.
    let (summary, output) = with_plan("seed:7,spec:worker.stall@150", || {
        run_commands(&monitors, &input, &options)
    });

    assert!(
        summary.restarted >= 1,
        "stall was not condemned: {summary:?}"
    );
    assert_eq!(summary.failed, 0, "a surviving stream failed:\n{output}");
    for stream in ["a", "b"] {
        assert_eq!(
            stream_lines(&output, stream),
            stream_lines(&baseline, stream),
            "stream {stream} diverged from the fault-free run"
        );
    }
}

#[test]
fn chaos_runs_are_reproducible_under_a_pinned_seed() {
    let _lock = serial();
    let registry = counter_registry();
    let monitors = registry.monitors();
    let input = two_stream_input();
    let options = options();

    // Without worker replacement, one worker processes tasks in input order:
    // the *entire* output is deterministic once wall-clock latencies are
    // masked — dropped lines included, because the occurrence counter ties
    // the fault to a specific write, not a specific moment.
    let drop_plan = "seed:42,spec:transport.drop@20;transport.half@200";
    let (first_summary, first) = with_plan(drop_plan, || run_commands(&monitors, &input, &options));
    let (second_summary, second) =
        with_plan(drop_plan, || run_commands(&monitors, &input, &options));
    let mask = |output: &str| {
        output
            .lines()
            .map(strip_latency)
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(mask(&first), mask(&second), "same plan, different output");
    assert_eq!(first_summary.events, second_summary.events);
    assert_eq!(first_summary.failed, second_summary.failed);

    // With worker replacement, cross-stream interleaving depends on *when*
    // the crash was detected — but every stream's own line sequence is still
    // byte-identical between the two runs.
    let crash_plan = "seed:42,spec:worker.panic@73";
    let (first_summary, first) =
        with_plan(crash_plan, || run_commands(&monitors, &input, &options));
    let (second_summary, second) =
        with_plan(crash_plan, || run_commands(&monitors, &input, &options));
    for stream in ["a", "b"] {
        assert_eq!(
            stream_lines(&first, stream),
            stream_lines(&second, stream),
            "stream {stream} differed between two runs of the same plan"
        );
    }
    assert!(first_summary.restarted >= 1);
    assert!(second_summary.restarted >= 1);
    assert_eq!(first_summary.events, second_summary.events);
    assert_eq!(first_summary.failed, second_summary.failed);
}

#[test]
fn exhausted_replay_log_sacrifices_only_the_affected_streams() {
    let _lock = serial();
    let registry = counter_registry();
    let monitors = registry.monitors();
    let input = two_stream_input();
    let options = ServeOptions {
        // No replay log at all: a worker death takes its streams with it.
        replay_budget: 0,
        ..options()
    };

    let (summary, output) = with_plan("seed:7,spec:worker.panic@100", || {
        run_commands(&monitors, &input, &options)
    });

    assert!(summary.restarted >= 1, "no restart recorded: {summary:?}");
    assert_eq!(summary.replayed, 0);
    // Both streams rode the one worker, so both are sacrificed — but each
    // gets an explicit error line and the run itself stays up.
    assert_eq!(
        summary.failed, 2,
        "unexpected summary: {summary:?}\n{output}"
    );
    assert_eq!(summary.streams, 2);
    assert!(
        output.contains("worker lost and replay log exhausted; stream dropped"),
        "no sacrifice error in:\n{output}"
    );
}

#[test]
fn drain_deadline_bounds_a_hung_worker() {
    let _lock = serial();
    let registry = counter_registry();
    let monitors = registry.monitors();
    let input = two_stream_input();
    let options = ServeOptions {
        // The watchdog would need 10s to condemn the stall, but shutdown
        // only waits 200ms: the draining deadline must win.
        stall_timeout: Duration::from_secs(10),
        drain_timeout: Duration::from_millis(200),
        ..options()
    };

    let (summary, output) = with_plan("seed:7,spec:worker.stall@550", || {
        run_commands(&monitors, &input, &options)
    });

    // The stall hit after most data was processed; shutdown gives up at the
    // deadline and accounts both streams as lost rather than hanging.
    assert_eq!(
        summary.failed, 2,
        "unexpected summary: {summary:?}\n{output}"
    );
    assert!(
        output.contains("stream lost in shutdown"),
        "no shutdown-loss error in:\n{output}"
    );
}

#[test]
fn short_read_truncates_a_csv_stream_cleanly() {
    let _lock = serial();
    let registry = counter_registry();
    let monitors = registry.monitors();
    let monitor = &monitors["counter"];
    let csv = counter_csv(300);

    // The 100th record read reports end-of-input instead. The header is a
    // record too (occurrence 1), so 98 data records survive.
    let (outcome, output) = with_plan("seed:7,spec:csv.short@100", || {
        let mut output = Vec::new();
        let outcome =
            serve_csv_stream(monitor, "pipe", csv.as_bytes(), &mut output, &options()).unwrap();
        (outcome, String::from_utf8(output).unwrap())
    });

    assert!(
        !outcome.failed,
        "a short read is a clean early end:\n{output}"
    );
    assert_eq!(outcome.events, 98);
    assert!(output.contains("summary pipe events=98"), "{output}");
}

#[test]
fn corrupt_byte_fails_one_stream_with_a_parse_error() {
    let _lock = serial();
    let registry = counter_registry();
    let monitors = registry.monitors();
    let monitor = &monitors["counter"];
    let csv = counter_csv(300);

    // One seeded byte of the 50th record is replaced with U+001A, which can
    // parse as neither a number nor an event name.
    let (outcome, output) = with_plan("seed:7,spec:csv.corrupt@50", || {
        let mut output = Vec::new();
        let outcome =
            serve_csv_stream(monitor, "pipe", csv.as_bytes(), &mut output, &options()).unwrap();
        (outcome, String::from_utf8(output).unwrap())
    });

    assert!(outcome.failed, "corruption must fail the stream:\n{output}");
    assert!(
        output.contains("error pipe "),
        "no error line in:\n{output}"
    );
    assert!(!output.contains("summary "), "no summary after failure");
}

#[test]
fn torn_record_outcomes_are_deterministic() {
    let _lock = serial();
    let registry = counter_registry();
    let monitors = registry.monitors();
    let monitor = &monitors["counter"];
    let csv = counter_csv(300);

    // A torn record may parse (a truncated integer is still an integer) or
    // fail — either way the pinned seed makes both runs agree exactly.
    let run = || {
        with_plan("seed:11,spec:csv.torn@40x3", || {
            let mut output = Vec::new();
            let outcome =
                serve_csv_stream(monitor, "pipe", csv.as_bytes(), &mut output, &options()).unwrap();
            (outcome, String::from_utf8(output).unwrap())
        })
    };
    let (first_outcome, first) = run();
    let (second_outcome, second) = run();
    let mask = |output: &str| output.lines().map(strip_latency).collect::<Vec<_>>();
    assert_eq!(mask(&first), mask(&second));
    assert_eq!(first_outcome, second_outcome);
}

#[test]
fn spurious_budget_exhaustion_fails_learning_loudly() {
    let _lock = serial();
    // Every solver call reports its budget exhausted: model learning at
    // registry load cannot succeed, and must say why rather than hang or
    // return a half-learned model.
    let error = with_plan("seed:7,spec:sat.budget@1x100000", || {
        let specs = vec![ModelSpec::parse("counter=workload:counter:600").unwrap()];
        Registry::load(&specs).expect_err("learning cannot succeed without a solver")
    });
    let message = error.to_string().to_lowercase();
    assert!(
        message.contains("budget") || message.contains("exhaust"),
        "unhelpful learning error: {message}"
    );
}

#[test]
fn dropped_output_lines_do_not_derail_the_stream() {
    let _lock = serial();
    let registry = counter_registry();
    let monitors = registry.monitors();
    let monitor = &monitors["counter"];
    let csv = counter_csv(300);

    disarm();
    let mut baseline = Vec::new();
    let baseline_outcome =
        serve_csv_stream(monitor, "pipe", csv.as_bytes(), &mut baseline, &options()).unwrap();
    let baseline = String::from_utf8(baseline).unwrap();

    // The 10th output line is swallowed by the transport.
    let (outcome, output) = with_plan("seed:7,spec:transport.drop@10", || {
        let mut output = Vec::new();
        let outcome =
            serve_csv_stream(monitor, "pipe", csv.as_bytes(), &mut output, &options()).unwrap();
        (outcome, String::from_utf8(output).unwrap())
    });

    // Monitoring is unaffected — only the wire lost a line.
    assert_eq!(outcome, baseline_outcome);
    assert_eq!(output.lines().count() + 1, baseline.lines().count());
}
