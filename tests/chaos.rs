//! Chaos suite: deterministic fault injection against the serving pipeline.
//!
//! Every test arms a pinned [`FaultPlan`] — same seed, same occurrence
//! numbers — so each "random" failure is a *named, reproducible* event, and
//! the assertions can be exact: a worker crash must cost an `info` line and
//! nothing else, so the verdict/summary sequence of every surviving stream
//! is compared byte-for-byte against a fault-free run of the same input.
//!
//! The plan registry is process-global, so tests serialize on one mutex and
//! each installs its own plan (which resets all occurrence counters).
//!
//! [`FaultPlan`]: tracelearn_faults::FaultPlan

#![cfg(feature = "fault-injection")]

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use tracelearn_faults::{disarm, install, FaultPlan};
use tracelearn_serve::{
    serve_commands, serve_csv_stream, ModelSpec, Registry, ServeOptions, ServeSummary,
};
use tracelearn_workloads::Workload;

/// The armed fault plan is process-global state: serialize every test.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Arms `spec` for the duration of one closure, guaranteeing disarm on exit
/// even when an assertion inside panics (the next test re-serializes anyway,
/// but a leftover plan would corrupt *its* occurrence counts).
fn with_plan<T>(spec: &str, run: impl FnOnce() -> T) -> T {
    struct Disarm;
    impl Drop for Disarm {
        fn drop(&mut self) {
            disarm();
        }
    }
    let _guard = Disarm;
    install(FaultPlan::parse(spec).expect("test plan must parse"));
    run()
}

fn counter_registry() -> Registry {
    let specs = vec![ModelSpec::parse("counter=workload:counter:600").unwrap()];
    Registry::load(&specs).unwrap()
}

fn counter_csv(length: usize) -> String {
    let mut csv = Vec::new();
    Workload::Counter
        .write_csv(length, 0xDAC2020, &mut csv)
        .unwrap();
    String::from_utf8(csv).unwrap()
}

fn options() -> ServeOptions {
    ServeOptions {
        workers: 1,
        calibration_events: 64,
        stall_timeout: Duration::from_millis(100),
        ..ServeOptions::default()
    }
}

/// Builds a two-stream multiplexed protocol script over the counter trace.
fn two_stream_input() -> String {
    let csv = counter_csv(300);
    let mut lines = csv.lines();
    let header = lines.next().unwrap().to_string();
    let records: Vec<String> = lines.map(str::to_string).collect();
    let mut input = String::new();
    input.push_str("open a counter\nopen b counter\n");
    input.push_str(&format!("data a {header}\ndata b {header}\n"));
    for record in &records {
        input.push_str(&format!("data a {record}\ndata b {record}\n"));
    }
    input.push_str("close a\nclose b\n");
    input
}

fn run_commands(
    registry: &mut Registry,
    input: &str,
    options: &ServeOptions,
) -> (ServeSummary, String) {
    let mut output = Vec::new();
    let summary = serve_commands(registry, input.as_bytes(), &mut output, options)
        .expect("serving must not return an I/O error");
    (summary, String::from_utf8(output).expect("output is UTF-8"))
}

/// A unique, empty state directory for one test.
fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tracelearn-chaos-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The stream snapshots currently in `dir`, as `(stream, seq)` pairs sorted
/// by stream name.
fn snapshot_coverage(dir: &std::path::Path) -> Vec<(String, u64)> {
    let mut coverage = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return coverage;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if !name.starts_with("stream-") || !name.ends_with(".snap") {
            continue;
        }
        let snapshot = tracelearn_persist::load_stream(&entry.path())
            .expect("snapshot on disk must load in this scenario");
        coverage.push((snapshot.stream, snapshot.seq));
    }
    coverage.sort();
    coverage
}

/// Strips the wall-clock latency fields from a summary line: they are the
/// one part of the output that legitimately differs between two runs of the
/// same plan. Everything before them — events, windows, deviations,
/// conformance — is part of the byte-identity contract.
fn strip_latency(line: &str) -> String {
    match line.split_once(" p50_us=") {
        Some((semantic, _)) if line.starts_with("summary ") => semantic.to_string(),
        _ => line.to_string(),
    }
}

/// The verdict/summary/error lines of one stream, in emission order —
/// the byte-identity unit of the chaos contract (`info` lines excluded:
/// supervision noise is allowed to differ, stream content is not).
fn stream_lines(output: &str, stream: &str) -> Vec<String> {
    output
        .lines()
        .filter(|line| {
            let mut parts = line.split_whitespace();
            let kind = parts.next().unwrap_or("");
            parts.next() == Some(stream) && matches!(kind, "verdict" | "summary" | "error")
        })
        .map(strip_latency)
        .collect()
}

#[test]
fn worker_panic_is_invisible_in_stream_output() {
    let _lock = serial();
    let mut registry = counter_registry();
    let input = two_stream_input();
    let options = options();

    disarm();
    let (baseline_summary, baseline) = run_commands(&mut registry, &input, &options);
    assert_eq!(baseline_summary.failed, 0);
    assert_eq!(baseline_summary.restarted, 0);

    // The 100th data task panics its worker mid-run.
    let (summary, output) = with_plan("seed:7,spec:worker.panic@100", || {
        run_commands(&mut registry, &input, &options)
    });

    assert!(summary.restarted >= 1, "no restart recorded: {summary:?}");
    assert!(summary.replayed >= 1, "no replay recorded: {summary:?}");
    assert_eq!(summary.failed, 0, "a surviving stream failed:\n{output}");
    assert_eq!(summary.streams, baseline_summary.streams);
    assert_eq!(summary.events, baseline_summary.events);
    assert_eq!(summary.deviations, baseline_summary.deviations);
    assert!(
        output.contains("info - worker 0 restarted"),
        "no supervision info line in:\n{output}"
    );
    assert!(
        output.contains("records after worker loss"),
        "no replay info line in:\n{output}"
    );
    for stream in ["a", "b"] {
        assert_eq!(
            stream_lines(&output, stream),
            stream_lines(&baseline, stream),
            "stream {stream} diverged from the fault-free run"
        );
    }
}

#[test]
fn worker_stall_is_condemned_and_replayed() {
    let _lock = serial();
    let mut registry = counter_registry();
    let input = two_stream_input();
    let options = options();

    disarm();
    let (_, baseline) = run_commands(&mut registry, &input, &options);

    // The 150th data task wedges its worker until the watchdog condemns it.
    let (summary, output) = with_plan("seed:7,spec:worker.stall@150", || {
        run_commands(&mut registry, &input, &options)
    });

    assert!(
        summary.restarted >= 1,
        "stall was not condemned: {summary:?}"
    );
    assert_eq!(summary.failed, 0, "a surviving stream failed:\n{output}");
    for stream in ["a", "b"] {
        assert_eq!(
            stream_lines(&output, stream),
            stream_lines(&baseline, stream),
            "stream {stream} diverged from the fault-free run"
        );
    }
}

#[test]
fn chaos_runs_are_reproducible_under_a_pinned_seed() {
    let _lock = serial();
    let mut registry = counter_registry();
    let input = two_stream_input();
    let options = options();

    // Without worker replacement, one worker processes tasks in input order:
    // the *entire* output is deterministic once wall-clock latencies are
    // masked — dropped lines included, because the occurrence counter ties
    // the fault to a specific write, not a specific moment.
    let drop_plan = "seed:42,spec:transport.drop@20;transport.half@200";
    let (first_summary, first) =
        with_plan(drop_plan, || run_commands(&mut registry, &input, &options));
    let (second_summary, second) =
        with_plan(drop_plan, || run_commands(&mut registry, &input, &options));
    let mask = |output: &str| {
        output
            .lines()
            .map(strip_latency)
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(mask(&first), mask(&second), "same plan, different output");
    assert_eq!(first_summary.events, second_summary.events);
    assert_eq!(first_summary.failed, second_summary.failed);

    // With worker replacement, cross-stream interleaving depends on *when*
    // the crash was detected — but every stream's own line sequence is still
    // byte-identical between the two runs.
    let crash_plan = "seed:42,spec:worker.panic@73";
    let (first_summary, first) =
        with_plan(crash_plan, || run_commands(&mut registry, &input, &options));
    let (second_summary, second) =
        with_plan(crash_plan, || run_commands(&mut registry, &input, &options));
    for stream in ["a", "b"] {
        assert_eq!(
            stream_lines(&first, stream),
            stream_lines(&second, stream),
            "stream {stream} differed between two runs of the same plan"
        );
    }
    assert!(first_summary.restarted >= 1);
    assert!(second_summary.restarted >= 1);
    assert_eq!(first_summary.events, second_summary.events);
    assert_eq!(first_summary.failed, second_summary.failed);
}

#[test]
fn exhausted_replay_log_sacrifices_only_the_affected_streams() {
    let _lock = serial();
    let mut registry = counter_registry();
    let input = two_stream_input();
    let options = ServeOptions {
        // No replay log at all: a worker death takes its streams with it.
        replay_budget: 0,
        ..options()
    };

    let (summary, output) = with_plan("seed:7,spec:worker.panic@100", || {
        run_commands(&mut registry, &input, &options)
    });

    assert!(summary.restarted >= 1, "no restart recorded: {summary:?}");
    assert_eq!(summary.replayed, 0);
    // Both streams rode the one worker, so both are sacrificed — but each
    // gets an explicit error line and the run itself stays up.
    assert_eq!(
        summary.failed, 2,
        "unexpected summary: {summary:?}\n{output}"
    );
    assert_eq!(summary.streams, 2);
    assert!(
        output.contains("worker lost and replay log exhausted; stream dropped"),
        "no sacrifice error in:\n{output}"
    );
}

#[test]
fn drain_deadline_bounds_a_hung_worker() {
    let _lock = serial();
    let mut registry = counter_registry();
    let input = two_stream_input();
    let options = ServeOptions {
        // The watchdog would need 10s to condemn the stall, but shutdown
        // only waits 200ms: the draining deadline must win.
        stall_timeout: Duration::from_secs(10),
        drain_timeout: Duration::from_millis(200),
        ..options()
    };

    let (summary, output) = with_plan("seed:7,spec:worker.stall@550", || {
        run_commands(&mut registry, &input, &options)
    });

    // The stall hit after most data was processed; shutdown gives up at the
    // deadline and accounts both streams as lost rather than hanging.
    assert_eq!(
        summary.failed, 2,
        "unexpected summary: {summary:?}\n{output}"
    );
    assert!(
        output.contains("stream lost in shutdown"),
        "no shutdown-loss error in:\n{output}"
    );
}

#[test]
fn short_read_truncates_a_csv_stream_cleanly() {
    let _lock = serial();
    let registry = counter_registry();
    let monitors = registry.monitors();
    let monitor = &monitors["counter"];
    let csv = counter_csv(300);

    // The 100th record read reports end-of-input instead. The header is a
    // record too (occurrence 1), so 98 data records survive.
    let (outcome, output) = with_plan("seed:7,spec:csv.short@100", || {
        let mut output = Vec::new();
        let outcome =
            serve_csv_stream(monitor, "pipe", csv.as_bytes(), &mut output, &options()).unwrap();
        (outcome, String::from_utf8(output).unwrap())
    });

    assert!(
        !outcome.failed,
        "a short read is a clean early end:\n{output}"
    );
    assert_eq!(outcome.events, 98);
    assert!(output.contains("summary pipe events=98"), "{output}");
}

#[test]
fn corrupt_byte_fails_one_stream_with_a_parse_error() {
    let _lock = serial();
    let registry = counter_registry();
    let monitors = registry.monitors();
    let monitor = &monitors["counter"];
    let csv = counter_csv(300);

    // One seeded byte of the 50th record is replaced with U+001A, which can
    // parse as neither a number nor an event name.
    let (outcome, output) = with_plan("seed:7,spec:csv.corrupt@50", || {
        let mut output = Vec::new();
        let outcome =
            serve_csv_stream(monitor, "pipe", csv.as_bytes(), &mut output, &options()).unwrap();
        (outcome, String::from_utf8(output).unwrap())
    });

    assert!(outcome.failed, "corruption must fail the stream:\n{output}");
    assert!(
        output.contains("error pipe "),
        "no error line in:\n{output}"
    );
    assert!(!output.contains("summary "), "no summary after failure");
}

#[test]
fn torn_record_outcomes_are_deterministic() {
    let _lock = serial();
    let registry = counter_registry();
    let monitors = registry.monitors();
    let monitor = &monitors["counter"];
    let csv = counter_csv(300);

    // A torn record may parse (a truncated integer is still an integer) or
    // fail — either way the pinned seed makes both runs agree exactly.
    let run = || {
        with_plan("seed:11,spec:csv.torn@40x3", || {
            let mut output = Vec::new();
            let outcome =
                serve_csv_stream(monitor, "pipe", csv.as_bytes(), &mut output, &options()).unwrap();
            (outcome, String::from_utf8(output).unwrap())
        })
    };
    let (first_outcome, first) = run();
    let (second_outcome, second) = run();
    let mask = |output: &str| output.lines().map(strip_latency).collect::<Vec<_>>();
    assert_eq!(mask(&first), mask(&second));
    assert_eq!(first_outcome, second_outcome);
}

#[test]
fn spurious_budget_exhaustion_fails_learning_loudly() {
    let _lock = serial();
    // Every solver call reports its budget exhausted: model learning at
    // registry load cannot succeed, and must say why rather than hang or
    // return a half-learned model.
    let error = with_plan("seed:7,spec:sat.budget@1x100000", || {
        let specs = vec![ModelSpec::parse("counter=workload:counter:600").unwrap()];
        Registry::load(&specs).expect_err("learning cannot succeed without a solver")
    });
    let message = error.to_string().to_lowercase();
    assert!(
        message.contains("budget") || message.contains("exhaust"),
        "unhelpful learning error: {message}"
    );
}

#[test]
fn dropped_output_lines_do_not_derail_the_stream() {
    let _lock = serial();
    let registry = counter_registry();
    let monitors = registry.monitors();
    let monitor = &monitors["counter"];
    let csv = counter_csv(300);

    disarm();
    let mut baseline = Vec::new();
    let baseline_outcome =
        serve_csv_stream(monitor, "pipe", csv.as_bytes(), &mut baseline, &options()).unwrap();
    let baseline = String::from_utf8(baseline).unwrap();

    // The 10th output line is swallowed by the transport.
    let (outcome, output) = with_plan("seed:7,spec:transport.drop@10", || {
        let mut output = Vec::new();
        let outcome =
            serve_csv_stream(monitor, "pipe", csv.as_bytes(), &mut output, &options()).unwrap();
        (outcome, String::from_utf8(output).unwrap())
    });

    // Monitoring is unaffected — only the wire lost a line.
    assert_eq!(outcome, baseline_outcome);
    assert_eq!(output.lines().count() + 1, baseline.lines().count());
}

/// The headline crash-durability scenario: the daemon is "killed" (injected
/// `persist.interrupt`) partway through a checkpoint cycle, restarted
/// against the same state directory, and every recovered stream's
/// *subsequent* verdict/summary lines must be byte-identical to an
/// uninterrupted run. Streams whose snapshot never landed simply start
/// over — also byte-identical from scratch.
#[test]
fn kill_during_checkpoint_recovers_streams_byte_identically() {
    let _lock = serial();
    let dir = state_dir("kill-ckpt");
    let input = two_stream_input();
    let csv = counter_csv(300);
    let records: Vec<String> = csv.lines().skip(1).map(str::to_string).collect();
    let options = ServeOptions {
        state_dir: Some(dir.clone()),
        checkpoint_every: 100,
        ..options()
    };

    // The uninterrupted reference run (no state machinery involved).
    disarm();
    let plain = ServeOptions {
        state_dir: None,
        ..options.clone()
    };
    let (baseline_summary, baseline) = run_commands(&mut counter_registry(), &input, &plain);
    assert_eq!(baseline_summary.failed, 0);

    // The crash: checkpoint cycle 1 snapshots stream `a` (interrupt check
    // 1 passes), then dies before stream `b` (check 2 fires) — a torn
    // checkpoint *cycle*, with one stream durable and one not.
    let (summary, _) = with_plan("seed:7,spec:persist.interrupt@2", || {
        run_commands(&mut counter_registry(), &input, &options)
    });
    assert!(summary.aborted, "interrupt did not abort: {summary:?}");
    assert_eq!(summary.checkpoints, 1, "{summary:?}");

    let coverage = snapshot_coverage(&dir);
    assert_eq!(coverage.len(), 1, "one durable snapshot: {coverage:?}");
    let (ref covered_stream, covered_seq) = coverage[0];
    assert_eq!(covered_stream, "a");
    assert!(covered_seq >= 2, "snapshot covers the header and some data");

    // The restart: the client resumes each stream where the *snapshot*
    // says it stands — `a` from its covered sequence, `b` from scratch.
    disarm();
    let consumed = (covered_seq - 1) as usize;
    let header = csv.lines().next().unwrap();
    let mut continuation = String::new();
    for record in &records[consumed..] {
        continuation.push_str(&format!("data a {record}\n"));
    }
    continuation.push_str("close a\n");
    continuation.push_str(&format!("open b counter\ndata b {header}\n"));
    for record in &records {
        continuation.push_str(&format!("data b {record}\n"));
    }
    continuation.push_str("close b\n");
    let (restarted, output) = run_commands(&mut counter_registry(), &continuation, &options);

    assert_eq!(restarted.recovered, 1, "{output}");
    assert_eq!(restarted.reset, 0, "{output}");
    assert_eq!(restarted.failed, 0, "{output}");
    assert!(
        output.contains(&format!("recovered a seq={covered_seq} events={consumed}")),
        "{output}"
    );
    // Stream `a` continues exactly where the crash left it: its post-crash
    // lines equal the tail of the uninterrupted run.
    let expected_tail: Vec<String> = stream_lines(&baseline, "a")[consumed..].to_vec();
    assert_eq!(
        stream_lines(&output, "a"),
        expected_tail,
        "recovered stream diverged from the uninterrupted run"
    );
    // Stream `b` was never durable: re-opened from scratch, it reproduces
    // the full uninterrupted sequence.
    assert_eq!(
        stream_lines(&output, "b"),
        stream_lines(&baseline, "b"),
        "reset stream diverged from the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn snapshot write lands on disk looking published (rename included —
/// the crash image of a host that died mid-write), so the *restart* must
/// reject it with a typed error and reset the stream, never resume against
/// half a snapshot.
#[test]
fn torn_checkpoint_is_rejected_and_reset_on_restart() {
    let _lock = serial();
    let dir = state_dir("torn-ckpt");
    let input = two_stream_input();
    let options = ServeOptions {
        state_dir: Some(dir.clone()),
        checkpoint_every: 100,
        ..options()
    };

    // Cycle 1: stream `a`'s snapshot write is torn (but lands), then the
    // interrupt kills the daemon before stream `b`.
    let (summary, _) = with_plan("seed:7,spec:persist.torn@1;persist.interrupt@2", || {
        run_commands(&mut counter_registry(), &input, &options)
    });
    assert!(summary.aborted, "{summary:?}");

    disarm();
    let (restarted, output) = run_commands(&mut counter_registry(), "", &options);
    assert_eq!(restarted.recovered, 0, "{output}");
    assert_eq!(restarted.reset, 1, "{output}");
    assert!(
        output.contains("reset a snapshot rejected:"),
        "torn snapshot not rejected in:\n{output}"
    );
    // The damaged file is gone: the next start is silent.
    let (third, _) = run_commands(&mut counter_registry(), "", &options);
    assert_eq!(third.reset, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A failed snapshot *rename* is an explicit error: the checkpoint reports
/// it on an `info` line, keeps the stream dirty, and the next cycle
/// retries successfully — the run itself never degrades.
#[test]
fn failed_snapshot_rename_is_retried_next_cycle() {
    let _lock = serial();
    let dir = state_dir("rename-ckpt");
    let input = two_stream_input();
    let options = ServeOptions {
        state_dir: Some(dir.clone()),
        checkpoint_every: 100,
        ..options()
    };

    let (summary, output) = with_plan("seed:7,spec:persist.rename@1", || {
        run_commands(&mut counter_registry(), &input, &options)
    });
    assert_eq!(summary.failed, 0, "{output}");
    assert!(!summary.aborted);
    assert!(
        output.contains("info a checkpoint failed:"),
        "no checkpoint-failure info line in:\n{output}"
    );
    // Later cycles succeeded, and the clean closes swept the files away.
    assert!(summary.checkpoints >= 1, "{summary:?}");
    assert!(snapshot_coverage(&dir).is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

/// A snapshot read truncated mid-flight (`persist.short`) at recovery is a
/// typed rejection and a `reset`, never a panic or a wrong resume.
#[test]
fn short_snapshot_read_resets_the_stream_on_recovery() {
    let _lock = serial();
    let dir = state_dir("short-ckpt");
    let input = two_stream_input();
    let options = ServeOptions {
        state_dir: Some(dir.clone()),
        checkpoint_every: 100,
        ..options()
    };

    // Leave one healthy snapshot behind via an interrupted run.
    let (summary, _) = with_plan("seed:7,spec:persist.interrupt@2", || {
        run_commands(&mut counter_registry(), &input, &options)
    });
    assert!(summary.aborted);
    assert_eq!(snapshot_coverage(&dir).len(), 1);

    // The restart's read of that snapshot comes up short.
    let (restarted, output) = with_plan("seed:7,spec:persist.short@1", || {
        run_commands(&mut counter_registry(), "", &options)
    });
    assert_eq!(restarted.recovered, 0, "{output}");
    assert_eq!(restarted.reset, 1, "{output}");
    assert!(
        output.contains("reset a snapshot rejected:"),
        "short read not rejected in:\n{output}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `reload` under worker loss: a stream opened before the reload stays
/// pinned to its open-time model even when its worker dies *after* the
/// registry moved on — the replay must use the pinned version, so the
/// stream's lines stay byte-identical to a crash-free run with the same
/// reload.
#[test]
fn reload_pins_in_flight_streams_across_worker_loss() {
    let _lock = serial();
    let csv = counter_csv(300);
    let mut lines = csv.lines();
    let header = lines.next().unwrap();
    let records: Vec<&str> = lines.collect();
    let options = options();

    let mut input = String::new();
    input.push_str(&format!("open a counter\ndata a {header}\n"));
    for record in &records[..100] {
        input.push_str(&format!("data a {record}\n"));
    }
    // The registry hot-swaps to a differently-trained version mid-stream.
    input.push_str("reload counter workload:counter:900\n");
    for record in &records[100..] {
        input.push_str(&format!("data a {record}\n"));
    }
    input.push_str("close a\n");

    // Each run gets a fresh registry: a reload mutates the registry, so
    // reusing one would open the second run's stream against version 2.
    disarm();
    let (baseline_summary, baseline) = run_commands(&mut counter_registry(), &input, &options);
    assert_eq!(baseline_summary.failed, 0);

    // Same input, but the worker dies after the reload: the replay has to
    // rebuild stream `a` against version 1, not the reloaded version 2+.
    let (summary, output) = with_plan("seed:7,spec:worker.panic@150", || {
        run_commands(&mut counter_registry(), &input, &options)
    });
    assert!(summary.restarted >= 1, "{summary:?}");
    assert_eq!(summary.failed, 0, "{output}");
    assert_eq!(
        stream_lines(&output, "a"),
        stream_lines(&baseline, "a"),
        "pinned stream diverged after reload + worker loss"
    );
}
