//! Integration tests of the incremental monitoring path: a stream fed one
//! event at a time through `MonitorSession::push_event` must reach the same
//! `MonitorReport` as the whole-trace batch `Monitor::check`, and a
//! million-event stream must be served in bounded resident memory.

use tracelearn::learn::{Monitor, MonitorReport, DEFAULT_CALIBRATION_EVENTS};
use tracelearn::prelude::*;
use tracelearn::trace::{RowEntry, StreamingCsvReader, Trace};
use tracelearn::workloads::counter::{self, CounterConfig};

use proptest::prelude::*;

/// Feeds every observation of `fresh` through an incremental session with
/// the given calibration budget and returns the finished report.
fn incremental_report(
    monitor: &Monitor,
    fresh: &Trace,
    calibration_events: usize,
) -> MonitorReport {
    let mut session = monitor
        .session_with_calibration(fresh.signature(), calibration_events)
        .expect("window fits");
    for observation in fresh.observations() {
        session
            .push_event(observation, fresh.symbols())
            .expect("push succeeds");
    }
    session.finish(fresh.symbols()).expect("finish succeeds")
}

/// On every benchmark workload, pushing the fresh stream event-by-event
/// (daemon-default calibration budget) yields a report byte-identical to
/// the batch `Monitor::check` of the same stream.
#[test]
fn six_workloads_incremental_equals_batch() {
    for workload in Workload::all() {
        let train = workload.generate(2_000);
        let config = tracelearn_config_for(workload);
        let model = Learner::new(config.clone())
            .learn(&train)
            .expect("workloads are learnable");
        let monitor = Monitor::new(&model, config);
        let fresh = workload.generate(5_000);

        let batch = monitor.check(&fresh).expect("checkable");
        let incremental = incremental_report(&monitor, &fresh, DEFAULT_CALIBRATION_EVENTS);
        assert_eq!(batch, incremental, "{} diverged", workload.name());
    }
}

/// The learner configuration matching the benchmark harness: the
/// integrator's `ip` variable is a free input, the rest use defaults.
fn tracelearn_config_for(workload: Workload) -> LearnerConfig {
    match workload {
        Workload::Integrator => LearnerConfig::default().with_input_variable("ip"),
        _ => LearnerConfig::default(),
    }
}

/// Builds an event-only trace over the alphabet {a, b, c} from indices.
fn event_trace(ops: &[u8]) -> Trace {
    let sig = Signature::builder().event("op").build();
    let mut trace = Trace::new(sig);
    for &op in ops {
        let name = ["a", "b", "c"][op as usize % 3];
        trace.push_named_row(vec![RowEntry::Event(name)]).unwrap();
    }
    trace
}

proptest! {
    /// For arbitrary event-valued streams (where predicate abstraction is
    /// calibration-insensitive), an aggressively small calibration budget
    /// still reproduces the batch report exactly — deviations and all.
    #[test]
    fn random_event_streams_incremental_equals_batch(
        ops in proptest::collection::vec(0u8..3, 3..120),
    ) {
        // A fixed cyclic training system; random streams deviate freely.
        let train_ops: Vec<u8> = (0..60).map(|i| (i % 3) as u8).collect();
        let train = event_trace(&train_ops);
        let model = Learner::new(LearnerConfig::default())
            .learn(&train)
            .expect("cyclic event trace is learnable");
        let monitor = Monitor::new(&model, LearnerConfig::default());

        let fresh = event_trace(&ops);
        let batch = monitor.check(&fresh).expect("checkable");
        let incremental = incremental_report(&monitor, &fresh, 16);
        prop_assert_eq!(batch, incremental);
    }
}

/// The serving-scale run: a million-event counter stream is decoded from
/// CSV and pushed through one session without ever materialising the trace.
/// The session's resident footprint (distinct predicates, windows, pending
/// buffer) must plateau — identical after 100k and after 1M events — and
/// the stream must come out clean. Ignored in debug builds (it is CPU-bound
/// there); CI runs it in release.
#[cfg_attr(
    debug_assertions,
    ignore = "run in release builds (CI: cargo test --release)"
)]
#[test]
fn million_event_stream_is_served_in_bounded_memory() {
    let events = 1_000_000usize;
    let config = CounterConfig {
        threshold: 128,
        length: events,
    };
    let mut csv = Vec::new();
    counter::write_csv(&config, &mut csv).unwrap();

    let train = counter::generate(&CounterConfig {
        threshold: 128,
        length: 2_000,
    });
    let model = Learner::new(LearnerConfig::default())
        .learn(&train)
        .unwrap();
    let monitor = Monitor::new(&model, LearnerConfig::default());

    let mut reader = StreamingCsvReader::new(csv.as_slice()).unwrap();
    let mut session = monitor.session(reader.signature()).unwrap();
    let mut early_footprint = None;
    while let Some(observation) = reader.next_observation().unwrap() {
        let verdict = session.push_event(&observation, reader.symbols()).unwrap();
        assert!(verdict.is_clean(), "unexpected deviation: {verdict:?}");
        if session.events() == 100_000 {
            early_footprint = Some(session.footprint());
        }
    }
    let early = early_footprint.expect("stream passed the 100k mark");
    let late = session.footprint();
    assert_eq!(late.events, events);

    // Resident state plateaus: everything distinct was seen in the first
    // 100k events; the remaining 900k add nothing.
    assert_eq!(early.distinct_predicates, late.distinct_predicates);
    assert_eq!(early.distinct_windows, late.distinct_windows);
    assert_eq!(
        early.distinct_observation_windows,
        late.distinct_observation_windows
    );
    assert_eq!(early.deviations, late.deviations);
    // The calibration buffer was drained and never regrows; only the
    // window-sized sliding buffer stays resident.
    assert_eq!(early.buffered_observations, late.buffered_observations);
    assert!(
        late.buffered_observations <= LearnerConfig::default().window,
        "calibration buffer still resident: {late:?}"
    );

    let report = session.finish(reader.symbols()).unwrap();
    assert!(report.is_clean());
}
