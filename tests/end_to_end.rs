//! Cross-crate integration tests: the full pipeline (workload simulator →
//! predicate synthesis → SAT-based construction → compliance) on each of the
//! paper's benchmarks at reduced scale.

use tracelearn::learn::compliance::is_compliant;
use tracelearn::prelude::*;
use tracelearn::trace::unique_windows;

fn learner_for(workload: Workload) -> Learner {
    let config = LearnerConfig::default();
    let config = match workload {
        Workload::Integrator => config.with_input_variable("ip"),
        _ => config,
    };
    Learner::new(config)
}

/// Learns a model for `workload` at the given scale and runs the structural
/// checks every learned model must satisfy.
fn learn_and_check(workload: Workload, length: usize) -> tracelearn::learn::LearnedModel {
    let trace = workload.generate(length);
    let model = learner_for(workload)
        .learn(&trace)
        .unwrap_or_else(|e| panic!("{} failed to learn: {e}", workload.name()));
    // Structural invariants from the paper's formulation.
    assert!(
        model.automaton().is_deterministic(),
        "{}: at most one successor per (state, predicate)",
        workload.name()
    );
    assert!(
        is_compliant(model.automaton(), model.predicate_sequence(), 2),
        "{}: compliance must hold on the returned model",
        workload.name()
    );
    for window in unique_windows(model.predicate_sequence(), 3) {
        assert!(
            model.automaton().accepts_from_any_state(&window),
            "{}: every unique window must be embedded",
            workload.name()
        );
    }
    // All states are reachable… from somewhere: no isolated junk states.
    assert!(model.num_states() >= 1);
    assert!(model.num_transitions() >= model.automaton().labels().len());
    model
}

#[test]
fn usb_slot_model_matches_paper_size() {
    let model = learn_and_check(Workload::UsbSlot, 39);
    assert!(
        (3..=5).contains(&model.num_states()),
        "expected about 4 states (paper: 4), got {}",
        model.num_states()
    );
    let predicates = model.predicate_strings();
    assert!(
        predicates.iter().any(|p| p.contains("CR_CONFIG_END")),
        "{predicates:?}"
    );
}

#[test]
fn usb_attach_model_is_concise() {
    let model = learn_and_check(Workload::UsbAttach, 259);
    assert!(
        (4..=10).contains(&model.num_states()),
        "expected about 7 states (paper: 7), got {}",
        model.num_states()
    );
    let predicates = model.predicate_strings();
    assert!(
        predicates.iter().any(|p| p.contains("xhci_ring_fetch")),
        "{predicates:?}"
    );
    assert!(
        predicates.iter().any(|p| p.contains("CCSuccess")),
        "{predicates:?}"
    );
}

#[test]
fn counter_model_has_four_states_and_threshold_predicates() {
    let model = learn_and_check(Workload::Counter, 447);
    assert_eq!(model.num_states(), 4, "paper reports 4 states");
    let predicates = model.predicate_strings();
    assert!(
        predicates.iter().any(|p| p.contains("x + 1")),
        "{predicates:?}"
    );
    assert!(
        predicates.iter().any(|p| p.contains("x - 1")),
        "{predicates:?}"
    );
    // The threshold constant 128 is discovered by synthesis.
    assert!(
        predicates
            .iter()
            .any(|p| p.contains("127") || p.contains("128")),
        "{predicates:?}"
    );
}

#[test]
fn serial_port_model_is_concise_and_pairs_ops_with_updates() {
    let model = learn_and_check(Workload::SerialPort, 1024);
    assert!(
        (2..=8).contains(&model.num_states()),
        "expected a handful of states (paper: 6), got {}",
        model.num_states()
    );
    let predicates = model.predicate_strings();
    assert!(
        predicates
            .iter()
            .any(|p| p.contains("write") && p.contains("x + 1")),
        "{predicates:?}"
    );
    assert!(
        predicates
            .iter()
            .any(|p| p.contains("reset") && p.contains("x' = 0")),
        "{predicates:?}"
    );
}

#[test]
fn rtlinux_model_covers_the_scheduler_alphabet() {
    let model = learn_and_check(Workload::LinuxKernel, 2048);
    assert!(
        (4..=10).contains(&model.num_states()),
        "expected about 8 states (paper: 8), got {}",
        model.num_states()
    );
    let predicates = model.predicate_strings();
    for event in ["sched_waking", "sched_switch_in", "set_state_sleepable"] {
        assert!(
            predicates.iter().any(|p| p.contains(event)),
            "missing {event}: {predicates:?}"
        );
    }
    // The incremental refinement loop constructs exactly one solver per
    // candidate state count (the default search starts at 2 states).
    let stats = model.stats();
    assert_eq!(
        stats.solvers_constructed,
        stats.states - 1,
        "expected one solver per candidate state count: {stats:?}"
    );
}

#[test]
fn integrator_model_is_tiny_and_has_the_integration_predicate() {
    let model = learn_and_check(Workload::Integrator, 2048);
    assert!(
        (2..=6).contains(&model.num_states()),
        "expected about 3 states (paper: 3), got {}",
        model.num_states()
    );
    let predicates = model.predicate_strings();
    assert!(
        predicates
            .iter()
            .any(|p| p.contains("op + ip") || p.contains("ip + op")),
        "{predicates:?}"
    );
    assert!(
        predicates.iter().any(|p| p.contains("op' = 0")),
        "{predicates:?}"
    );
    // The free input is never constrained.
    assert!(
        predicates.iter().all(|p| !p.contains("ip'")),
        "{predicates:?}"
    );
}

#[test]
fn learned_models_are_far_smaller_than_the_trace() {
    for workload in [
        Workload::Counter,
        Workload::SerialPort,
        Workload::LinuxKernel,
    ] {
        let length = 1024;
        let model = learn_and_check(workload, length);
        assert!(
            model.num_states() * 20 < length,
            "{}: {} states is not concise",
            workload.name(),
            model.num_states()
        );
    }
}

#[test]
fn stats_are_populated() {
    let trace = Workload::Counter.generate(256);
    let model = learner_for(Workload::Counter).learn(&trace).unwrap();
    let stats = model.stats();
    assert_eq!(stats.trace_length, 256);
    assert_eq!(stats.predicate_count, 254);
    assert!(stats.alphabet_size >= 3);
    assert!(stats.solver_windows < stats.predicate_count);
    assert!(stats.sat_queries >= 1);
    assert!(stats.solvers_constructed >= 1);
    assert!(stats.sat_queries >= stats.solvers_constructed);
    assert_eq!(stats.states, model.num_states());
    assert!(stats.total_time >= stats.solver_time);
}
