//! Offline API stand-in for the `criterion` benchmark crate.
//!
//! The build environment has no access to a cargo registry, so the workspace
//! vendors a minimal harness that is source-compatible with the subset of
//! the real `criterion` API used by the benches in `crates/bench/benches/`:
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`] and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical sampling it times a small fixed number
//! of iterations per benchmark and prints `name ... median-per-iter` lines,
//! which keeps `cargo bench` runs fast and dependency-free. Swapping in the
//! real `criterion` is a manifest-only change — see `vendor/README.md`.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Iterations timed per benchmark (`CRITERION_STUB_ITERS`, default 3).
fn iters_per_bench() -> u32 {
    std::env::var("CRITERION_STUB_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1)
}

/// Re-export of `std::hint::black_box`, criterion's optimizer barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut f);
        self
    }
}

/// A named group of benchmarks (`Criterion::benchmark_group`).
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub does not time-box runs.
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark over a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.label());
        run_one(&full, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Runs a benchmark without an explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().label());
        run_one(&full, &mut f);
        self
    }

    /// Ends the group. No-op in the stub.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id distinguished only by a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::new(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function: Some(name.to_owned()),
            parameter: None,
        }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    per_iter: Option<Duration>,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let iters = iters_per_bench();
        // One untimed warm-up iteration.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.per_iter = Some(start.elapsed() / iters);
    }
}

fn run_one(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { per_iter: None };
    f(&mut bencher);
    match bencher.per_iter {
        Some(per_iter) => println!("bench: {name:<60} {per_iter:>12.2?}/iter"),
        None => println!("bench: {name:<60} (no measurement)"),
    }
}

/// Collects benchmark functions into a group runner, like the real
/// criterion's simple form. The `name = ...; config = ...` form is not
/// supported by the stub.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Expands to `fn main` running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
