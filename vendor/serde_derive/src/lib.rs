//! Offline no-op stand-in for the `serde_derive` proc-macro crate.
//!
//! The build environment has no access to a cargo registry, so the workspace
//! vendors a minimal substitute. The derives accept the `#[serde(...)]`
//! helper attribute (so annotations like `#[serde(skip)]` parse) and expand
//! to nothing: no code in this workspace consumes `Serialize`/`Deserialize`
//! impls yet. Swapping in the real `serde`/`serde_derive` is a
//! manifest-only change — see `vendor/README.md`.

use proc_macro::TokenStream;

/// No-op replacement for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
