//! Offline API stand-in for the `proptest` crate.
//!
//! The build environment has no access to a cargo registry, so the workspace
//! vendors a minimal property-testing engine that is source-compatible with
//! the subset of the real `proptest` API used by the test suites:
//!
//! * [`Strategy`] with `prop_map`, `prop_flat_map`, `prop_recursive`, `boxed`;
//! * integer-range, tuple, [`Just`], [`Union`] and [`collection::vec`]
//!   strategies plus [`bool::ANY`];
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`] and [`prop_assert_ne!`] macros.
//!
//! Differences from the real crate: inputs are generated from a fixed
//! deterministic seed (derived from the test's module path and name, so runs
//! are reproducible), there is **no shrinking** of failing cases, and
//! assertion failures panic immediately. The number of cases per property
//! defaults to 64 and can be overridden with the `PROPTEST_CASES`
//! environment variable. Swapping in the real `proptest` is a manifest-only
//! change — see `vendor/README.md`.

#![forbid(unsafe_code)]

use std::rc::Rc;

use test_runner::TestRng;

pub mod test_runner {
    //! The deterministic random source driving input generation.

    /// A small, fast, deterministic RNG (splitmix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG whose stream is fully determined by `seed`.
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Returns the next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Returns a uniform index in `0..n`. Panics when `n == 0`.
        pub fn index(&mut self, n: usize) -> usize {
            assert!(n > 0, "cannot sample an index from an empty range");
            (self.next_u64() % n as u64) as usize
        }
    }
}

/// Number of inputs generated per property (`PROPTEST_CASES`, default 64,
/// clamped to at least 1 so properties can never silently become no-ops).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
        .max(1)
}

/// Derives a stable per-test seed from the test's fully qualified name
/// (FNV-1a), so distinct properties explore distinct input streams.
pub fn seed_from_name(name: &str) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// A generator of random values of type `Self::Value`.
///
/// Unlike the real proptest `Strategy`, this stand-in has no value tree and
/// no shrinking: a strategy is just a seeded sampler.
pub trait Strategy {
    /// The type of values this strategy generates.
    type Value;

    /// Samples one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Returns a strategy producing `f(v)` for generated values `v`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { strat: self, f }
    }

    /// Returns a strategy that samples an intermediate value and then
    /// samples from the strategy `f` builds from it.
    fn prop_flat_map<R, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        R: Strategy,
        F: Fn(Self::Value) -> R,
    {
        FlatMap { strat: self, f }
    }

    /// Erases the strategy's concrete type behind a cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            sample: Rc::new(move |rng| self.generate(rng)),
        }
    }

    /// Builds recursive values: `self` is the leaf case and `recurse` wraps
    /// an inner strategy into the compound case. Recursion is capped at
    /// `depth` levels; the sampler picks leaf or compound uniformly at each
    /// level, so the remaining two size parameters of the real API are
    /// accepted but unused.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let expanded = recurse(cur).boxed();
            cur = Union::new(vec![leaf.clone(), expanded]).boxed();
        }
        cur
    }
}

/// A type-erased, cloneable strategy handle (`Strategy::boxed`).
pub struct BoxedStrategy<V> {
    sample: Rc<dyn Fn(&mut TestRng) -> V>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            sample: Rc::clone(&self.sample),
        }
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (self.sample)(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strat: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strat.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    strat: S,
    f: F,
}

impl<S, R, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    R: Strategy,
    F: Fn(S::Value) -> R,
{
    type Value = R::Value;

    fn generate(&self, rng: &mut TestRng) -> R::Value {
        (self.f)(self.strat.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between several strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Creates a union over the given arms. Panics when `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let arm = rng.index(self.arms.len());
        self.arms[arm].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),+) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                let offset = (rng.next_u64() as i128).rem_euclid(span);
                ((self.start as i128) + offset) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                let offset = (rng.next_u64() as i128).rem_euclid(span);
                ((*self.start() as i128) + offset) as $t
            }
        }
    )+};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($S:ident $idx:tt),+))+) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

pub mod bool {
    //! Strategies for `bool` values.

    /// The strategy type of [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniformly random booleans (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl crate::Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut crate::test_runner::TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Strategies for collections.

    use crate::{test_runner::TestRng, Strategy};

    /// The strategy type returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Generates `Vec`s whose length is uniform in `size` and whose elements
    /// are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(
            size.start < size.end,
            "empty size range for collection::vec"
        );
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end - self.size.start;
            let len = self.size.start + rng.index(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Declares property tests. Each function runs [`cases()`] times with fresh
/// inputs drawn from the strategies to the right of each `in`.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block )*) => {$(
        $(#[$attr])*
        fn $name() {
            let __strategies = ($($strat,)+);
            let mut __rng = $crate::test_runner::TestRng::from_seed($crate::seed_from_name(
                concat!(module_path!(), "::", stringify!($name)),
            ));
            for __case in 0..$crate::cases() {
                let ($($arg,)+) = $crate::Strategy::generate(&__strategies, &mut __rng);
                $body
            }
        }
    )*};
}

/// Uniform choice between the listed strategies (all must yield one type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Property-test assertion; panics on failure (no shrinking in this stub).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property-test equality assertion; panics on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Property-test inequality assertion; panics on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        Strategy, Union,
    };
}
