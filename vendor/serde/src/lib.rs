//! Offline API stand-in for the `serde` crate.
//!
//! The build environment has no access to a cargo registry, so the workspace
//! vendors a minimal substitute: the two marker traits plus re-exports of
//! the no-op derives from the sibling `serde_derive` stub. Nothing in the
//! workspace serializes data yet; the annotations on the trace/expr types
//! record intent so that swapping in the real `serde` is a manifest-only
//! change — see `vendor/README.md`.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
